"""``python -m repro`` — run, list and report experiments from the shell.

Subcommands
-----------

``run [EXPERIMENT ...]``
    Execute named experiment presets (default: the CI ``smoke`` preset when
    ``--smoke`` is given, otherwise every figure preset) over the worker
    pool, write one versioned JSON artifact per experiment and print the
    throughput summary.  ``--platforms``/``--workloads`` replace the presets
    with one ad-hoc experiment called ``custom``.

``list``
    Show the available platforms, workloads and experiment presets.

``report [EXPERIMENT ...]``
    Re-read previously written artifacts and print their summaries without
    re-running anything (what CI does after downloading artifacts).

``report --diff BASELINE CANDIDATE [--threshold FRACTION]``
    Compare two artifact files run by run and exit non-zero when any run's
    throughput drops by more than the relative threshold (or disappears).
    CI uses this as its perf-regression gate: a committed baseline artifact
    versus the fresh smoke run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from ..analysis.experiments import ExperimentResult
from ..analysis.reporting import format_table
from ..api import Session
from ..platforms.registry import PLATFORM_NAMES, available_platforms
from ..workloads.registry import ExperimentScale, all_workload_names
from .artifacts import (
    EXPERIMENT_SCHEMA,
    experiment_from_artifact,
    load_experiment_artifact,
    write_experiment_artifact,
)
from .presets import SMOKE_SCALE, ExperimentPreset, get_preset, preset_names
from .regression import DEFAULT_THRESHOLD, diff_artifacts

DEFAULT_OUTPUT_DIR = Path("benchmarks") / "results"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HAMS reproduction experiment runner")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="execute experiments and write JSON artifacts")
    run.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                     help=f"preset names ({', '.join(preset_names())}); "
                          f"default: all figure presets")
    run.add_argument("--smoke", action="store_true",
                     help="tiny-scale CI smoke run (defaults to the 'smoke' "
                          "preset)")
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes (default: $REPRO_WORKERS or CPU "
                          "count)")
    run.add_argument("--output-dir", type=Path, default=DEFAULT_OUTPUT_DIR,
                     help="directory for experiment artifacts "
                          "(default: benchmarks/results)")
    run.add_argument("--cache-dir", type=Path, default=None,
                     help="content-addressed run cache "
                          "(default: <output-dir>/cache)")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the run cache entirely")
    run.add_argument("--force", action="store_true",
                     help="ignore cache hits but refresh stored runs")
    run.add_argument("--platforms", nargs="+", metavar="PLATFORM",
                     help="ad-hoc experiment: platform registry names")
    run.add_argument("--workloads", nargs="+", metavar="WORKLOAD",
                     help="ad-hoc experiment: Table III workload names")
    run.add_argument("--capacity-scale", type=float, default=None,
                     help="capacity shrink factor (e.g. 0.015625 for 1/64)")
    run.add_argument("--instruction-scale", type=float, default=None,
                     help="instruction-stream shrink factor")
    run.add_argument("--min-accesses", type=int, default=None,
                     help="lower bound on trace length")
    run.add_argument("--max-accesses", type=int, default=None,
                     help="upper bound on trace length")
    run.add_argument("--seed", type=int, default=None,
                     help="trace generator seed")
    run.add_argument("--quiet", action="store_true",
                     help="only print the one-line summary per experiment")
    run.set_defaults(handler=cmd_run)

    lst = subparsers.add_parser(
        "list", help="list platforms, workloads and experiment presets")
    lst.set_defaults(handler=cmd_list)

    report = subparsers.add_parser(
        "report", help="summarise previously written artifacts")
    report.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="artifact names (default: every *.json in the "
                             "output directory)")
    report.add_argument("--output-dir", type=Path,
                        default=DEFAULT_OUTPUT_DIR,
                        help="directory holding the artifacts")
    report.add_argument("--diff", nargs=2, metavar=("BASELINE", "CANDIDATE"),
                        type=Path, default=None,
                        help="compare two artifact files; exit non-zero on "
                             "a throughput regression past the threshold")
    report.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="relative regression tolerance for --diff "
                             f"(default: {DEFAULT_THRESHOLD})")
    report.set_defaults(handler=cmd_report)

    return parser


def _build_scale(args: argparse.Namespace) -> ExperimentScale:
    """Start from the smoke or default scale, then apply explicit knobs."""
    base = SMOKE_SCALE if args.smoke else ExperimentScale()
    kwargs = {}
    if args.capacity_scale is not None:
        kwargs["capacity_scale"] = args.capacity_scale
    if args.instruction_scale is not None:
        kwargs["instruction_scale"] = args.instruction_scale
    if args.min_accesses is not None:
        kwargs["min_accesses"] = args.min_accesses
    if args.max_accesses is not None:
        kwargs["max_accesses"] = args.max_accesses
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if not kwargs:
        return base
    import dataclasses
    return dataclasses.replace(base, **kwargs)


def _select_presets(args: argparse.Namespace) -> List[ExperimentPreset]:
    if args.platforms or args.workloads:
        if not (args.platforms and args.workloads):
            raise ValueError(
                "--platforms and --workloads must be given together")
        return [ExperimentPreset(
            name="custom", figure="custom",
            description="ad-hoc experiment from the command line",
            platforms=tuple(args.platforms),
            workloads=tuple(args.workloads),
            baseline=args.platforms[0])]
    names = list(args.experiments)
    if not names:
        names = ["smoke"] if args.smoke else [
            name for name in preset_names() if name != "smoke"]
    return [get_preset(name) for name in names]


def _summarise(experiment: ExperimentResult,
               preset_name: str, baseline: str) -> str:
    """Throughput table plus the mean-speedup headline when possible."""
    lines = []
    throughput = {
        platform: {workload: experiment.get(platform, workload)
                   .operations_per_second
                   for workload in experiment.workloads()
                   if (platform, workload) in experiment.results}
        for platform in experiment.platforms()
    }
    lines.append(format_table(
        throughput, title=f"{preset_name}: throughput (ops/s)",
        float_format="{:.0f}", row_header="platform"))
    if baseline in experiment.platforms():
        speedups = {
            platform: {f"speedup vs {baseline}":
                       experiment.mean_speedup(platform, baseline)}
            for platform in experiment.platforms()
        }
        lines.append("")
        lines.append(format_table(
            speedups, title=f"{preset_name}: mean speedup",
            float_format="{:.2f}", row_header="platform"))
    return "\n".join(lines)


def cmd_run(args: argparse.Namespace) -> int:
    try:
        presets = _select_presets(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    scale = _build_scale(args)
    cache_dir: Optional[Path]
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = args.output_dir / "cache"

    try:
        session = Session(scale=scale, workers=args.workers,
                          cache_dir=cache_dir, force=args.force)
    except ValueError as error:  # e.g. a malformed $REPRO_WORKERS
        print(f"error: {error}", file=sys.stderr)
        return 2

    cache = session.runner.cache
    for preset in presets:
        started = time.perf_counter()
        hits_before, misses_before = cache.hits, cache.misses
        try:
            experiment = session.compare(preset.platforms, preset.workloads)
        except ValueError as error:
            # Unknown platform/workload names surface here (ad-hoc
            # --platforms/--workloads matrices are not validated up front).
            print(f"error: {error}", file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - started
        hits = cache.hits - hits_before
        misses = cache.misses - misses_before
        path = write_experiment_artifact(
            args.output_dir, preset.name, experiment, session.config,
            meta={
                "figure": preset.figure,
                "description": preset.description,
                "baseline": preset.baseline,
                "workers": session.workers,
                "elapsed_s": elapsed,
                "cache_hits": hits,
                "cache_misses": misses,
            })
        if not args.quiet:
            print()
            print(_summarise(experiment, preset.name, preset.baseline))
            print()
        print(f"{preset.name}: {preset.run_count} runs in {elapsed:.2f}s "
              f"({session.workers} workers, {hits} cached) -> {path}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("platforms (Figure 16 legend order):")
    for name in PLATFORM_NAMES:
        print(f"  {name}")
    extra = sorted(set(available_platforms()) - set(PLATFORM_NAMES))
    print("additional registry entries:")
    for name in extra:
        print(f"  {name}")
    print()
    print("workloads (Table III order):")
    for name in all_workload_names():
        print(f"  {name}")
    print()
    print("experiments:")
    for name in preset_names():
        preset = get_preset(name)
        print(f"  {name:8s} {preset.figure:12s} {preset.run_count:4d} runs  "
              f"{preset.description}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if args.diff is not None:
        baseline_path, candidate_path = args.diff
        try:
            report = diff_artifacts(baseline_path, candidate_path,
                                    threshold=args.threshold)
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"error: cannot diff artifacts ({error})", file=sys.stderr)
            return 2
        print(report.format())
        return 0 if report.passed else 1

    directory = args.output_dir
    # Explicitly named artifacts must load (errors are reported); under the
    # default glob, foreign JSON sharing the directory — the benchmarks'
    # BENCH_<figure>.json records, garbage — is skipped silently.  Each
    # file is read and parsed exactly once either way.
    strict = bool(args.experiments)
    if strict:
        paths = [directory / f"{name}.json" for name in args.experiments]
    else:
        paths = sorted(directory.glob("*.json"))
    status = 0
    loaded = []
    for path in paths:
        try:
            payload = load_experiment_artifact(path)
            experiment = experiment_from_artifact(payload)
        except (OSError, ValueError, KeyError, TypeError) as error:
            if strict:
                print(f"error: {path}: cannot read artifact ({error!r})",
                      file=sys.stderr)
                status = 1
            continue
        loaded.append((payload, experiment))
    if not loaded and not strict:
        print(f"error: no experiment artifacts found under {directory}",
              file=sys.stderr)
        return 1
    for payload, experiment in loaded:
        meta = payload.get("meta", {})
        baseline = meta.get("baseline", "mmap")
        print()
        print(f"== {payload['experiment']} "
              f"({meta.get('figure', 'unknown figure')}), "
              f"config {payload['config_hash'][:15]}..., "
              f"{len(payload['runs'])} runs ==")
        print(_summarise(experiment, payload["experiment"], baseline))
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Piping into `head` and friends closes stdout early; exit quietly
        # like a well-behaved UNIX tool instead of tracebacking.  Point
        # stdout at devnull so the interpreter's exit-time flush does not
        # raise again.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
