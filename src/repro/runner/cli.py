"""``python -m repro`` — run, list and report experiments from the shell.

Subcommands
-----------

``run [EXPERIMENT ...]``
    Execute named experiment presets (default: the CI ``smoke`` preset when
    ``--smoke`` is given, otherwise every figure preset), write one
    versioned JSON artifact per experiment plus a ``repro.events/1`` JSONL
    event log, and print the throughput summary.  ``--executor
    {serial,pool,sharded}`` picks the execution tier (default: the process
    pool; results are bit-identical on every tier), ``--progress`` renders
    a live completed/total/ETA ticker from the streaming
    :class:`~repro.exec.ExperimentHandle`, and
    ``--platforms``/``--workloads`` replace the presets with one ad-hoc
    experiment called ``custom``.

``list``
    Show the available platforms, workloads and experiment presets.

``report [EXPERIMENT ...]``
    Re-read previously written artifacts and print their summaries without
    re-running anything (what CI does after downloading artifacts).

``report --diff BASELINE CANDIDATE [--threshold FRACTION]``
    Compare two artifact files run by run and exit non-zero when any run's
    throughput drops by more than the relative threshold (or disappears).
    CI uses this as its perf-regression gate: a committed baseline artifact
    versus the fresh smoke run.  Both paths accept glob patterns, each of
    which must resolve to exactly one artifact.

``sweep --platform P --workloads W... --section S --field F --values V...``
    Sweep one config field of one platform across a value grid and write
    the experiment artifact (same ``(label, workload)`` keys the Figure
    20a study plots).  With ``--adaptive``, only a coarse seed of the
    grid is evaluated and refinement bisects wherever the metric curve's
    discrete curvature exceeds ``--tolerance`` (knee finding): cells
    whose content-addressed cache key is already resolved cost nothing,
    ``--budget`` caps the total estimated simulated accesses (pruned
    cells are recorded, not silently dropped), settled knees stop early,
    and the full refinement trace lands next to the artifact as a
    ``repro.sweep/1`` record.  Evaluated cells are bit-identical to the
    fixed-grid run of the same grid — ``repro report --diff`` between the
    two passes at threshold 0.

``shard plan|work|merge|status``
    The distributed execution tier (see :mod:`repro.distrib`): ``plan``
    partitions one experiment into N ``repro.shard/1`` manifests under a
    spool directory (``--balance cost`` weighs specs by estimated trace
    length instead of count), ``work`` claims and executes pending shards
    (any number of hosts sharing the spool may run it concurrently;
    crashed shards resume from the shared run cache, and every finished
    run is appended to the spool's per-run progress records), ``merge``
    provenance-checks the shard artifacts and writes the final
    ``repro.experiment/1`` artifact — bit-identical in its runs to an
    unsharded execution — and ``status`` shows where every shard stands
    (``--watch`` keeps polling, tailing the per-run progress records,
    until the spool completes).

``serve start|status|submit|watch|shutdown``
    The long-running multi-tenant experiment service (see
    :mod:`repro.serve` and :mod:`repro.serve.cli`): a daemon owning the
    run cache and a crash-safe persistent job queue, accepting
    submissions over HTTP/JSON, scheduling them priority-first with
    per-tenant fairness, deduping identical submissions against one
    execution, and streaming per-run progress as ``repro.events/1``.

``trace build|import|info|verify``
    The out-of-core trace store (see :mod:`repro.trace` and
    :mod:`repro.trace.cli`): materialise registry workloads to
    ``repro.trace/1`` files at any scale, ingest foreign CSV/binary
    access logs, and inspect or integrity-check trace files.  A built or
    imported file replays anywhere a workload name is accepted via
    ``trace:<path>`` — e.g. ``repro run --platforms mmap --workloads
    trace:seqRd.trace``.

``scenario run|plan|report``
    The multi-tenant scenario engine (see :mod:`repro.scenario` and
    :mod:`repro.scenario.cli`): deterministically interleave N tenants'
    access streams into one shared-system replay, attribute every cost
    back to its tenant, and study contention under QoS policies —
    ``run`` prints the per-tenant breakdown, ``plan`` the stream lengths
    and mix identity without running, ``report`` the solo-vs-mixed
    slowdown table with Jain's fairness index.
"""

from __future__ import annotations

import argparse
import glob as glob_module
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from ..analysis.experiments import ExperimentResult
from ..analysis.reporting import format_table
from ..api import Session
from ..config import default_config
from ..distrib import (
    BALANCE_MODES,
    SHARD_MANIFEST_SCHEMA,
    SHARD_RESULT_SCHEMA,
    ShardSpool,
    estimate_spec_cost,
    execute_shard_file,
    experiment_tag,
    load_shard_results,
    merge_shards,
    plan_shards,
    work_spool,
)
from ..exec import EXECUTOR_NAMES
from .events import read_events
from ..platforms.registry import PLATFORM_NAMES, available_platforms
from ..workloads.registry import (
    ExperimentScale,
    all_workload_names,
    scale_system_config,
)
from .artifacts import (
    EXPERIMENT_SCHEMA,
    experiment_from_artifact,
    load_experiment_artifact,
    write_experiment_artifact,
)
from .presets import SMOKE_SCALE, ExperimentPreset, get_preset, preset_names
from .regression import DEFAULT_THRESHOLD, diff_artifacts
from .specs import matrix_specs, workload_display_label

DEFAULT_OUTPUT_DIR = Path("benchmarks") / "results"


def _workload_display_map(workloads: Sequence[str]) -> dict:
    """Raw result keys -> readable column labels for report tables.

    Runs recorded under raw ``trace:<path>`` / ``scenario:{...}`` keys
    (older artifacts, specs built without a ``workload_label``) print as
    the trace's recorded workload name or the scenario's name instead of
    a path or JSON blob.  Distinct sources that would collide on the same
    label keep their raw keys — a rename must never merge columns.
    """
    labels = {workload: workload_display_label(workload) or workload
              for workload in workloads}
    owners: dict = {}
    for workload, label in labels.items():
        owners.setdefault(label, []).append(workload)
    for label, raw_keys in owners.items():
        if len(raw_keys) > 1:
            for raw in raw_keys:
                labels[raw] = raw
    return labels


def _add_matrix_arguments(parser: argparse.ArgumentParser) -> None:
    """Ad-hoc experiment axes shared by ``run`` and ``shard plan``."""
    parser.add_argument("--platforms", nargs="+", metavar="PLATFORM",
                        help="ad-hoc experiment: platform registry names")
    parser.add_argument("--workloads", nargs="+", metavar="WORKLOAD",
                        help="ad-hoc experiment: Table III workload names "
                             "or trace:<path> trace files")


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    """Scale knobs shared by ``run`` and ``shard plan``."""
    parser.add_argument("--smoke", action="store_true",
                        help="tiny-scale CI smoke run (defaults to the "
                             "'smoke' preset)")
    parser.add_argument("--capacity-scale", type=float, default=None,
                        help="capacity shrink factor (e.g. 0.015625 for "
                             "1/64)")
    parser.add_argument("--instruction-scale", type=float, default=None,
                        help="instruction-stream shrink factor")
    parser.add_argument("--min-accesses", type=int, default=None,
                        help="lower bound on trace length")
    parser.add_argument("--max-accesses", type=int, default=None,
                        help="upper bound on trace length")
    parser.add_argument("--seed", type=int, default=None,
                        help="trace generator seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HAMS reproduction experiment runner")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="execute experiments and write JSON artifacts")
    run.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                     help=f"preset names ({', '.join(preset_names())}); "
                          f"default: all figure presets")
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes (default: $REPRO_WORKERS or CPU "
                          "count)")
    run.add_argument("--output-dir", type=Path, default=DEFAULT_OUTPUT_DIR,
                     help="directory for experiment artifacts "
                          "(default: benchmarks/results)")
    run.add_argument("--cache-dir", type=Path, default=None,
                     help="content-addressed run cache "
                          "(default: <output-dir>/cache)")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the run cache entirely")
    run.add_argument("--force", action="store_true",
                     help="ignore cache hits but refresh stored runs")
    run.add_argument("--executor", default=None, metavar="TIER",
                     help=f"execution tier: one of {EXECUTOR_NAMES} "
                          f"(default: pool, or sharded when --shards is "
                          f"given); results are bit-identical on every "
                          f"tier")
    run.add_argument("--shards", type=int, default=None,
                     help="shard count for the sharded executor "
                          "(implies --executor sharded; default: 2 when "
                          "--executor sharded is given alone)")
    run.add_argument("--spool", type=Path, default=None,
                     help="spool directory for the sharded executor: keeps "
                          "shard artifacts and lets `repro shard work` "
                          "helpers on other hosts join in")
    run.add_argument("--progress", action="store_true",
                     help="render a live completed/total/ETA ticker on "
                          "stderr while the experiment streams")
    _add_matrix_arguments(run)
    _add_scale_arguments(run)
    run.add_argument("--quiet", action="store_true",
                     help="only print the one-line summary per experiment")
    run.set_defaults(handler=cmd_run)

    lst = subparsers.add_parser(
        "list", help="list platforms, workloads and experiment presets")
    lst.add_argument("--artifacts", type=Path, default=None,
                     metavar="DIR",
                     help="instead list the artifact JSONs under DIR with "
                          "their schema and shard provenance")
    lst.set_defaults(handler=cmd_list)

    report = subparsers.add_parser(
        "report", help="summarise previously written artifacts")
    report.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="artifact names (default: every *.json in the "
                             "output directory)")
    report.add_argument("--output-dir", type=Path,
                        default=DEFAULT_OUTPUT_DIR,
                        help="directory holding the artifacts")
    report.add_argument("--diff", nargs=2, metavar=("BASELINE", "CANDIDATE"),
                        type=str, default=None,
                        help="compare two artifact files (glob patterns "
                             "resolving to one file each); exit non-zero on "
                             "a throughput regression past the threshold")
    report.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="relative regression tolerance for --diff "
                             f"(default: {DEFAULT_THRESHOLD})")
    report.set_defaults(handler=cmd_report)

    sweep = subparsers.add_parser(
        "sweep", help="sweep one config field across a value grid "
                      "(--adaptive: refine where the metric curve bends)")
    sweep.add_argument("--platform", required=True,
                       help="platform registry name to sweep")
    sweep.add_argument("--workloads", nargs="+", required=True,
                       metavar="WORKLOAD",
                       help="workloads to evaluate at every grid value")
    sweep.add_argument("--section", required=True,
                       help="config section holding the swept field "
                            "(e.g. hams)")
    sweep.add_argument("--field", required=True,
                       help="config field to sweep (e.g. mos_page_bytes)")
    sweep.add_argument("--values", nargs="+", required=True, metavar="VALUE",
                       help="the value grid (numbers, strictly increasing "
                            "for --adaptive)")
    sweep.add_argument("--labels", nargs="+", default=None, metavar="LABEL",
                       help="per-value result labels (default: the value "
                            "itself; duplicates are rejected)")
    sweep.add_argument("--adaptive", action="store_true",
                       help="evaluate a coarse seed of the grid and refine "
                            "where the metric's curvature exceeds the "
                            "tolerance instead of enumerating every cell")
    sweep.add_argument("--metric", default="operations_per_second",
                       help="RunResult attribute driving refinement "
                            "(default: operations_per_second)")
    sweep.add_argument("--tolerance", type=float, default=0.05,
                       help="curvature threshold above which a grid "
                            "interval is bisected (default: 0.05)")
    sweep.add_argument("--budget", type=int, default=None,
                       help="cap on total estimated simulated accesses; "
                            "candidates past it are pruned and reported")
    sweep.add_argument("--seed-points", type=int, default=5,
                       help="grid cells evaluated per workload in round 0 "
                            "(default: 5, endpoints always included)")
    sweep.add_argument("--rounds", type=int, default=12,
                       help="refinement round cap (default: 12)")
    sweep.add_argument("--settle-rounds", type=int, default=3,
                       help="consecutive rounds a workload's knee must "
                            "hold still to stop refining it early "
                            "(default: 3; 0 disables early stop)")
    sweep.add_argument("--name", default="sweep",
                       help="artifact name (default: sweep)")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: $REPRO_WORKERS or "
                            "CPU count)")
    sweep.add_argument("--output-dir", type=Path, default=DEFAULT_OUTPUT_DIR,
                       help="directory for the experiment artifact and the "
                            "repro.sweep/1 record "
                            "(default: benchmarks/results)")
    sweep.add_argument("--cache-dir", type=Path, default=None,
                       help="content-addressed run cache "
                            "(default: <output-dir>/cache); a shared cache "
                            "is what makes re-runs and overlapping sweeps "
                            "cost zero for already-resolved cells")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the run cache entirely")
    sweep.add_argument("--force", action="store_true",
                       help="ignore cache hits but refresh stored runs")
    sweep.add_argument("--executor", default=None, metavar="TIER",
                       help=f"execution tier: one of {EXECUTOR_NAMES} or "
                            f"serve:<url> (default: pool)")
    sweep.add_argument("--shards", type=int, default=None,
                       help="shard count for the sharded executor")
    sweep.add_argument("--spool", type=Path, default=None,
                       help="spool directory for the sharded executor")
    _add_scale_arguments(sweep)
    sweep.add_argument("--quiet", action="store_true",
                       help="only print the one-line summary")
    sweep.set_defaults(handler=cmd_sweep)

    shard = subparsers.add_parser(
        "shard", help="distributed sharded execution over a spool directory")
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    plan = shard_sub.add_parser(
        "plan", help="partition one experiment into N shard manifests")
    plan.add_argument("experiment", nargs="?", metavar="EXPERIMENT",
                      help="preset name (default: 'smoke' with --smoke)")
    plan.add_argument("--shards", type=int, required=True,
                      help="number of shard manifests to produce")
    plan.add_argument("--spool", type=Path, required=True,
                      help="spool directory (local FS or NFS) the workers "
                           "share")
    plan.add_argument("--balance", choices=BALANCE_MODES, default="count",
                      help="partition by spec count (default) or by "
                           "estimated per-run cost (trace length), so "
                           "long and short workloads spread evenly")
    _add_matrix_arguments(plan)
    _add_scale_arguments(plan)
    plan.set_defaults(handler=cmd_shard_plan)

    work = shard_sub.add_parser(
        "work", help="claim and execute pending shards from a spool")
    work.add_argument("manifests", nargs="*", type=Path, metavar="MANIFEST",
                      help="explicit manifest/claim files to (re-)execute "
                           "instead of claiming pending shards — the "
                           "recovery path for orphaned claims")
    work.add_argument("--spool", type=Path, required=True,
                      help="spool directory to claim shards from")
    work.add_argument("--workers", type=int, default=None,
                      help="process-pool size per shard (default: "
                           "$REPRO_WORKERS or CPU count)")
    work.add_argument("--host", default=None,
                      help="worker identity recorded in claims/results "
                           "(default: hostname:pid)")
    work.add_argument("--max-shards", type=int, default=None,
                      help="stop after executing this many shards")
    work.add_argument("--force", action="store_true",
                      help="ignore run-cache hits but refresh stored runs")
    work.set_defaults(handler=cmd_shard_work)

    merge = shard_sub.add_parser(
        "merge", help="validate and merge shard results into one artifact")
    merge.add_argument("results", nargs="*", type=Path, metavar="RESULT",
                       help="shard result files (default: every "
                            "results/shard-*.json in the spool)")
    merge.add_argument("--spool", type=Path, default=None,
                       help="spool directory holding the shard results")
    merge.add_argument("--experiment", default=None, metavar="NAME_OR_ID",
                       help="merge only this plan's shards: an experiment "
                            "name, a full experiment id, or the short id "
                            "tag shown by `shard status` (required when "
                            "several plans share the spool)")
    merge.add_argument("--output", type=Path, default=None,
                       help="merged artifact path (default: "
                            "<spool>/<experiment>.json)")
    merge.add_argument("--quiet", action="store_true",
                       help="only print the one-line summary")
    merge.set_defaults(handler=cmd_shard_merge)

    status = shard_sub.add_parser(
        "status", help="show pending/running/done state of every shard")
    status.add_argument("--spool", type=Path, required=True,
                        help="spool directory to inspect")
    status.add_argument("--watch", action="store_true",
                        help="keep polling (tailing the per-run progress "
                             "records) until every shard is done")
    status.add_argument("--interval", type=float, default=2.0,
                        help="poll interval in seconds for --watch "
                             "(default: 2)")
    status.set_defaults(handler=cmd_shard_status)

    # Lazy: the serve and trace verb trees live with their packages, and
    # this module must stay importable before they finish loading.
    from ..serve.cli import register as register_serve
    register_serve(subparsers)
    from ..trace.cli import register as register_trace
    register_trace(subparsers)
    from ..scenario.cli import register as register_scenario
    register_scenario(subparsers)

    return parser


def _build_scale(args: argparse.Namespace) -> ExperimentScale:
    """Start from the smoke or default scale, then apply explicit knobs."""
    base = SMOKE_SCALE if args.smoke else ExperimentScale()
    kwargs = {}
    if args.capacity_scale is not None:
        kwargs["capacity_scale"] = args.capacity_scale
    if args.instruction_scale is not None:
        kwargs["instruction_scale"] = args.instruction_scale
    if args.min_accesses is not None:
        kwargs["min_accesses"] = args.min_accesses
    if args.max_accesses is not None:
        kwargs["max_accesses"] = args.max_accesses
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if not kwargs:
        return base
    import dataclasses
    return dataclasses.replace(base, **kwargs)


def _select_presets(args: argparse.Namespace) -> List[ExperimentPreset]:
    if args.platforms or args.workloads:
        if not (args.platforms and args.workloads):
            raise ValueError(
                "--platforms and --workloads must be given together")
        return [ExperimentPreset(
            name="custom", figure="custom",
            description="ad-hoc experiment from the command line",
            platforms=tuple(args.platforms),
            workloads=tuple(args.workloads),
            baseline=args.platforms[0])]
    names = list(args.experiments)
    if not names:
        names = ["smoke"] if args.smoke else [
            name for name in preset_names() if name != "smoke"]
    return [get_preset(name) for name in names]


def _summarise(experiment: ExperimentResult,
               preset_name: str, baseline: str) -> str:
    """Throughput table plus the mean-speedup headline when possible."""
    lines = []
    labels = _workload_display_map(experiment.workloads())
    throughput = {
        platform: {labels[workload]: experiment.get(platform, workload)
                   .operations_per_second
                   for workload in experiment.workloads()
                   if (platform, workload) in experiment.results}
        for platform in experiment.platforms()
    }
    lines.append(format_table(
        throughput, title=f"{preset_name}: throughput (ops/s)",
        float_format="{:.0f}", row_header="platform"))
    if baseline in experiment.platforms():
        speedups = {
            platform: {f"speedup vs {baseline}":
                       experiment.mean_speedup(platform, baseline)}
            for platform in experiment.platforms()
        }
        lines.append("")
        lines.append(format_table(
            speedups, title=f"{preset_name}: mean speedup",
            float_format="{:.2f}", row_header="platform"))
    return "\n".join(lines)


def cmd_run(args: argparse.Namespace) -> int:
    try:
        presets = _select_presets(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    scale = _build_scale(args)
    cache_dir: Optional[Path]
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = args.output_dir / "cache"

    executor = args.executor
    if executor is None and args.shards:
        executor = "sharded"  # --shards alone implies the sharded tier
    try:
        session = Session(scale=scale, workers=args.workers,
                          cache_dir=cache_dir, force=args.force,
                          executor=executor, shards=args.shards,
                          spool_dir=args.spool)
    except ValueError as error:  # e.g. a malformed $REPRO_WORKERS
        print(f"error: {error}", file=sys.stderr)
        return 2

    for preset in presets:
        started = time.perf_counter()
        events_path = args.output_dir / f"{preset.name}.events.jsonl"
        specs = matrix_specs(list(preset.platforms), list(preset.workloads))
        try:
            # `run` is a thin consumer of the streaming submit() API: the
            # handle yields runs as they complete (which is what the
            # --progress ticker renders) and result() folds them into the
            # same ExperimentResult the blocking verbs return.
            handle = session.submit(specs, name=preset.name,
                                    events_path=events_path)
            for _ in handle.iter_results():
                if args.progress:
                    print(f"\r{preset.name}: {handle.progress().format()}",
                          end="", file=sys.stderr, flush=True)
            if args.progress:
                print(file=sys.stderr)
            experiment = handle.result()
        except ValueError as error:
            # Unknown platform/workload names surface here (ad-hoc
            # --platforms/--workloads matrices are not validated up front).
            print(f"error: {error}", file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - started
        snapshot = handle.progress()
        hits = snapshot.cache_hits
        path = write_experiment_artifact(
            args.output_dir, preset.name, experiment, session.config,
            meta={
                "figure": preset.figure,
                "description": preset.description,
                "baseline": preset.baseline,
                "workers": session.workers,
                "executor": handle.executor,
                "elapsed_s": elapsed,
                "cache_hits": hits,
                "cache_misses": snapshot.total - hits,
                "events": events_path.name,
            })
        if not args.quiet:
            print()
            print(_summarise(experiment, preset.name, preset.baseline))
            print()
        print(f"{preset.name}: {preset.run_count} runs in {elapsed:.2f}s "
              f"({handle.executor} executor, {session.workers} workers, "
              f"{hits} cached) -> {path}")
    return 0


def _parse_sweep_value(raw: str):
    """CLI sweep values: int where possible, float next, else the string."""
    for parse in (int, float):
        try:
            return parse(raw)
        except ValueError:
            continue
    return raw


def cmd_sweep(args: argparse.Namespace) -> int:
    scale = _build_scale(args)
    cache_dir: Optional[Path]
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = args.output_dir / "cache"
    values = [_parse_sweep_value(raw) for raw in args.values]
    executor = args.executor
    if executor is None and args.shards:
        executor = "sharded"

    try:
        session = Session(scale=scale, workers=args.workers,
                          cache_dir=cache_dir, force=args.force,
                          executor=executor, shards=args.shards,
                          spool_dir=args.spool)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    started = time.perf_counter()
    try:
        if args.adaptive:
            from ..sweep import write_sweep_record

            def narrate(round_) -> None:
                ran = sum(cell.cost for cell in round_.evaluated)
                print(f"{args.name}: round {round_.number}: "
                      f"{len(round_.evaluated)} evaluated, "
                      f"{len(round_.skipped)} cached, "
                      f"{len(round_.pruned)} pruned "
                      f"({ran} accesses)", file=sys.stderr)

            result = session.adaptive_sweep(
                args.platform, args.workloads, args.section, args.field,
                values, labels=args.labels, metric=args.metric,
                tolerance=args.tolerance, budget=args.budget,
                seed_points=args.seed_points, max_rounds=args.rounds,
                settle_rounds=args.settle_rounds or None, name=args.name,
                observer=None if args.quiet else narrate)
            experiment = result.experiment
        else:
            experiment = session.sweep(
                args.platform, args.workloads, args.section, args.field,
                values, labels=args.labels)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    meta = {
        "sweep": {
            "mode": "adaptive" if args.adaptive else "grid",
            "platform": args.platform,
            "section": args.section,
            "field": args.field,
            "values": values,
        },
        "workers": session.workers,
        "elapsed_s": elapsed,
    }
    if args.adaptive:
        meta["sweep"].update({
            "metric": result.metric,
            "tolerance": result.tolerance,
            "budget": result.budget,
            "evaluated": len(result.evaluated_cells),
            "skipped": len(result.skipped_cells),
            "pruned": len(result.pruned_cells),
            "grid_cost": result.grid_cost,
            "spent_cost": result.spent_cost,
            "stop_reason": result.stop_reason,
            "knees": result.knees,
            "record": f"{args.name}.sweep.json",
        })
    path = write_experiment_artifact(args.output_dir, args.name, experiment,
                                     session.config, meta=meta)
    if not args.quiet:
        print()
        print(_summarise(experiment, args.name, args.platform))
        print()
    if args.adaptive:
        record_path = write_sweep_record(args.output_dir, args.name, result,
                                         session.config)
        knees = ", ".join(
            f"{workload}={value}" for workload, value in
            result.knees.items())
        saved = (1.0 - result.spent_cost / result.grid_cost) \
            if result.grid_cost else 0.0
        print(f"{args.name}: {len(result.evaluated_cells)} of "
              f"{len(values) * len(args.workloads)} cells evaluated "
              f"({len(result.skipped_cells)} cached, "
              f"{len(result.pruned_cells)} pruned) in "
              f"{len(result.rounds)} round(s), {elapsed:.2f}s; "
              f"spent {result.spent_cost}/{result.grid_cost} accesses "
              f"({saved:.0%} saved), stop: {result.stop_reason}; "
              f"knees: {knees}")
        print(f"{args.name}: artifact -> {path}; refinement trace -> "
              f"{record_path}")
    else:
        print(f"{args.name}: {len(values) * len(args.workloads)} runs in "
              f"{elapsed:.2f}s -> {path}")
    return 0


def _artifact_provenance(payload: dict) -> str:
    """One-line shard provenance of an artifact, or '' when unsharded."""
    schema = payload.get("schema", "?")
    if schema in (SHARD_MANIFEST_SCHEMA, SHARD_RESULT_SCHEMA):
        host = payload.get("host") or payload.get(
            "claim", {}).get("owner")
        host_part = f", host {host}" if host else ""
        return (f"  [shard {payload.get('shard_index', '?')}/"
                f"{payload.get('shard_count', '?')}{host_part}]")
    sharded = payload.get("meta", {}).get("sharded")
    if sharded:
        hosts = ",".join(dict.fromkeys(sharded.get("hosts", []))) or "?"
        return (f"  [merged from {sharded.get('shard_count', '?')} "
                f"shard(s), hosts {hosts}]")
    return ""


def cmd_list_artifacts(directory: Path) -> int:
    paths = sorted(Path(directory).glob("*.json")) + \
        sorted(Path(directory).glob("*/shard-*.json"))
    if not paths:
        print(f"error: no artifacts found under {directory}",
              file=sys.stderr)
        return 1
    print(f"artifacts under {directory}:")
    for path in paths:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            continue  # vanished mid-scan
        except json.JSONDecodeError:
            # An inspection command must surface broken artifacts, not
            # hide exactly the files the operator is hunting for.
            print(f"  {str(path.relative_to(directory)):32s} "
                  f"(unreadable: not valid JSON)")
            continue
        schema = payload.get("schema") if isinstance(payload, dict) else None
        if not isinstance(schema, str) or not schema.startswith("repro."):
            continue  # foreign JSON legitimately sharing the directory
        runs = payload.get("runs") or payload.get("specs") or []
        print(f"  {str(path.relative_to(directory)):32s} {schema:22s} "
              f"{len(runs):4d} runs{_artifact_provenance(payload)}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    if args.artifacts is not None:
        return cmd_list_artifacts(args.artifacts)
    print("platforms (Figure 16 legend order):")
    for name in PLATFORM_NAMES:
        print(f"  {name}")
    extra = sorted(set(available_platforms()) - set(PLATFORM_NAMES))
    print("additional registry entries:")
    for name in extra:
        print(f"  {name}")
    print()
    print("workloads (Table III order):")
    for name in all_workload_names():
        print(f"  {name}")
    print()
    print("experiments:")
    for name in preset_names():
        preset = get_preset(name)
        print(f"  {name:8s} {preset.figure:12s} {preset.run_count:4d} runs  "
              f"{preset.description}")
    return 0


def _resolve_artifact_pattern(pattern: str) -> Path:
    """Expand one ``--diff`` operand: a literal path or a glob pattern.

    The pattern must name exactly one artifact — sharded pipelines often
    only know the spool directory, not the experiment name, so
    ``spool/*.json`` style patterns are accepted as long as they are
    unambiguous.
    """
    path = Path(pattern)
    if path.is_file():
        return path
    matches = sorted(Path(match) for match in glob_module.glob(pattern))
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise ValueError(f"no artifact matches {pattern!r}")
    listing = ", ".join(str(match) for match in matches)
    raise ValueError(
        f"pattern {pattern!r} is ambiguous ({len(matches)} matches: "
        f"{listing})")


def cmd_report(args: argparse.Namespace) -> int:
    if args.diff is not None:
        try:
            baseline_path, candidate_path = (
                _resolve_artifact_pattern(pattern) for pattern in args.diff)
            report = diff_artifacts(baseline_path, candidate_path,
                                    threshold=args.threshold)
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"error: cannot diff artifacts ({error})", file=sys.stderr)
            return 2
        print(report.format())
        return 0 if report.passed else 1

    directory = args.output_dir
    # Explicitly named artifacts must load (errors are reported); under the
    # default glob, foreign JSON sharing the directory — the benchmarks'
    # BENCH_<figure>.json records, garbage — is skipped silently.  Each
    # file is read and parsed exactly once either way.
    strict = bool(args.experiments)
    if strict:
        paths = [directory / f"{name}.json" for name in args.experiments]
    else:
        paths = sorted(directory.glob("*.json"))
    status = 0
    loaded = []
    for path in paths:
        try:
            payload = load_experiment_artifact(path)
            experiment = experiment_from_artifact(payload)
        except (OSError, ValueError, KeyError, TypeError) as error:
            if strict:
                print(f"error: {path}: cannot read artifact ({error!r})",
                      file=sys.stderr)
                status = 1
            continue
        loaded.append((payload, experiment))
    if not loaded and not strict:
        print(f"error: no experiment artifacts found under {directory}",
              file=sys.stderr)
        return 1
    for payload, experiment in loaded:
        meta = payload.get("meta", {})
        baseline = meta.get("baseline", "mmap")
        print()
        print(f"== {payload['experiment']} "
              f"({meta.get('figure', 'unknown figure')}), "
              f"config {payload['config_hash'][:15]}..., "
              f"{len(payload['runs'])} runs ==")
        print(_summarise(experiment, payload["experiment"], baseline))
    return status


def _select_single_preset(args: argparse.Namespace) -> ExperimentPreset:
    """One experiment, named or ad-hoc (``shard plan``, ``serve submit``)."""
    if args.experiment and (args.platforms or args.workloads):
        raise ValueError(
            f"cannot combine the {args.experiment!r} preset with "
            f"--platforms/--workloads: name a preset or describe an "
            f"ad-hoc matrix, not both")
    args.experiments = [args.experiment] if args.experiment else []
    presets = _select_presets(args)
    if len(presets) != 1:
        raise ValueError(
            "need exactly one experiment: name a preset, pass "
            "--smoke, or give --platforms/--workloads")
    return presets[0]


def cmd_shard_plan(args: argparse.Namespace) -> int:
    try:
        preset = _select_single_preset(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    scale = _build_scale(args)
    config = scale_system_config(default_config(), scale)
    specs = matrix_specs(list(preset.platforms), list(preset.workloads))
    try:
        manifests = plan_shards(preset.name, specs, config, scale,
                                args.shards, baseline=preset.baseline,
                                balance=args.balance)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    spool = ShardSpool(args.spool).prepare()
    paths = spool.add_manifests(manifests)
    sizes = [len(manifest["specs"]) for manifest in manifests]
    print(f"{preset.name}: planned {len(specs)} runs into "
          f"{len(manifests)} shard(s) (sizes {sizes}, balanced by "
          f"{args.balance}) under {spool.pending_dir}")
    if args.balance == "cost":
        costs = [sum(estimate_spec_cost(
                     specs[entry["index"]], scale)
                     for entry in manifest["specs"])
                 for manifest in manifests]
        print(f"estimated per-shard cost (accesses): {costs}")
    skipped = len(manifests) - len(paths)
    if skipped:
        print(f"{skipped} shard(s) already claimed or done in this spool; "
              f"queued {len(paths)}")
    print(f"experiment id: {manifests[0]['experiment_id']}")
    return 0


def cmd_shard_work(args: argparse.Namespace) -> int:
    spool = ShardSpool(args.spool).prepare()
    try:
        if args.manifests:
            published = [
                execute_shard_file(path, spool, workers=args.workers,
                                   force=args.force, host=args.host)
                for path in args.manifests]
        else:
            published = work_spool(spool, owner=args.host,
                                   workers=args.workers, force=args.force,
                                   max_shards=args.max_shards)
    except (OSError, ValueError, KeyError, TypeError) as error:
        # KeyError/TypeError cover structurally broken manifest files, the
        # same class of bad input cmd_shard_merge guards against.
        print(f"error: {error!r}", file=sys.stderr)
        return 2
    if not published:
        print("no pending shards to claim")
        return 0
    for path in published:
        print(f"shard result -> {path}")
    return 0


def cmd_shard_merge(args: argparse.Namespace) -> int:
    if args.results:
        result_paths = list(args.results)
    elif args.spool is not None:
        result_paths = ShardSpool(args.spool).result_paths()
    else:
        print("error: give shard result files or --spool", file=sys.stderr)
        return 2
    if args.output is None and args.spool is None:
        # Fail the cheap precondition before loading and folding shards.
        print("error: give --output when merging explicit result files",
              file=sys.stderr)
        return 2
    try:
        payloads = load_shard_results(result_paths)
        if args.experiment is not None:
            # Experiment names are not unique across plans (ad-hoc plans
            # are all called 'custom'), so the selector also accepts the
            # experiment id or its short tag.
            def selected(payload: dict) -> bool:
                experiment_id = payload.get("experiment_id", "")
                return args.experiment in (payload.get("experiment"),
                                           experiment_id,
                                           experiment_tag(experiment_id))

            payloads = [payload for payload in payloads if selected(payload)]
            if not payloads:
                print(f"error: no shard results for experiment "
                      f"{args.experiment!r}", file=sys.stderr)
                return 1
        merged = merge_shards(payloads)
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"error: cannot merge shards ({error})", file=sys.stderr)
        return 1
    output = (args.output if args.output is not None
              else Path(args.spool) / f"{merged.experiment}.json")
    try:
        path = merged.write_artifact(output)
    except OSError as error:
        print(f"error: cannot write merged artifact ({error})",
              file=sys.stderr)
        return 1
    if not args.quiet:
        print()
        print(_summarise(merged.result, merged.experiment,
                         merged.baseline or "mmap"))
        print()
    hosts = ",".join(dict.fromkeys(merged.hosts)) or "none"
    print(f"{merged.experiment}: merged {merged.total_runs} runs from "
          f"{merged.shard_count} shard(s) (hosts {hosts}) -> {path}")
    return 0


def _spool_run_progress(spool: ShardSpool) -> tuple:
    """(runs done, runs total) across every shard of a spool.

    A shard's total comes from its manifest (pending/claimed) or artifact
    (done); its completed count from the artifact when finished, else from
    the unique run indices of its per-run progress records — resumed
    shards append duplicate indices, so the count dedupes.  Totals are
    best-effort: a torn file counts as zero rather than crashing the one
    command an operator watches a spool with.
    """
    done = 0
    total = 0
    seen_result = set()
    for path in spool.result_paths():
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            runs = len(payload.get("runs", []))
        except (OSError, json.JSONDecodeError):
            continue
        seen_result.add(path.name)
        done += runs
        total += runs
    for directory in (spool.claims_dir, spool.pending_dir):
        for path in sorted(directory.glob("shard-*.json")):
            if path.name in seen_result:
                continue  # finished shard with raced claim cleanup
            seen_result.add(path.name)
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                total += len(payload.get("specs", []))
            except (OSError, json.JSONDecodeError):
                continue
            events, _ = read_events(spool.progress_path(path.name))
            done += len({event.index for event in events
                         if event.index is not None})
    return done, total


def _print_spool_status(spool: ShardSpool, status) -> None:
    print(f"spool {spool.root}: {len(status.done)} done, "
          f"{len(status.running)} running, {len(status.pending)} pending")
    for label in sorted(status.pending):
        print(f"  {label}  pending")
    for label, owner in sorted(status.running.items()):
        print(f"  {label}  running  ({owner})")
    for label in sorted(status.done):
        print(f"  {label}  done")


def cmd_shard_status(args: argparse.Namespace) -> int:
    spool = ShardSpool(args.spool)
    if not args.watch:
        status = spool.status()
        if status.total == 0:
            print(f"error: no shards found under {spool.root} "
                  f"(did `repro shard plan` run?)", file=sys.stderr)
            return 1
        _print_spool_status(spool, status)
        return 0 if status.complete else 3

    # --watch: poll until the spool completes, tailing the per-run
    # progress records so the operator sees shards advance run by run,
    # not just flip state at the end.  An empty spool is legal here (the
    # plan may not have landed yet) but is called out once — watching a
    # mistyped --spool path forever with no diagnostic would be cruel.
    warned_empty = False
    while True:
        status = spool.status()
        if status.total == 0:
            if not warned_empty:
                warned_empty = True
                print(f"no shards found under {spool.root} yet — waiting "
                      f"(did `repro shard plan` run, and is --spool "
                      f"right?)", file=sys.stderr)
        else:
            done_runs, total_runs = _spool_run_progress(spool)
            print(f"spool {spool.root}: {len(status.done)} done, "
                  f"{len(status.running)} running, "
                  f"{len(status.pending)} pending | "
                  f"runs {done_runs}/{total_runs}", flush=True)
            if status.complete:
                _print_spool_status(spool, status)
                return 0
        time.sleep(args.interval)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Piping into `head` and friends closes stdout early; exit quietly
        # like a well-behaved UNIX tool instead of tracebacking.  Point
        # stdout at devnull so the interpreter's exit-time flush does not
        # raise again.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
