"""MMU and TLB model.

The MMU is the component HAMS serves directly: it issues memory requests for
virtual addresses and, in the MMF baseline, raises page faults that the OS
has to resolve through the storage stack (Section II-B, Figure 3).  The
model tracks:

* a TLB with an LRU replacement policy (page-size sensitive — Figure 20a
  notes that small pages incur frequent TLB misses),
* a resident-set of virtual pages that currently have a valid PTE, used by
  the mmap platform to decide when an access faults.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set


@dataclass
class TranslationResult:
    """Outcome of one MMU translation."""

    page_number: int
    tlb_hit: bool
    page_present: bool
    latency_ns: float


class TLB:
    """A fully-associative, LRU translation lookaside buffer."""

    def __init__(self, entries: int = 512, hit_ns: float = 0.5,
                 miss_ns: float = 30.0) -> None:
        if entries <= 0:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self.hit_ns = hit_ns
        self.miss_ns = miss_ns
        self._entries: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, page_number: int) -> bool:
        """Probe the TLB; on a miss the page-walk latency applies."""
        if page_number in self._entries:
            self._entries.move_to_end(page_number)
            self.hits += 1
            return True
        self.misses += 1
        self._insert(page_number)
        return False

    def _insert(self, page_number: int) -> None:
        if len(self._entries) >= self.entries:
            self._entries.popitem(last=False)
        self._entries[page_number] = None

    def invalidate(self, page_number: int) -> None:
        self._entries.pop(page_number, None)

    def flush(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class MMU:
    """Per-process address translation with page-presence tracking."""

    def __init__(self, page_size: int, tlb: Optional[TLB] = None) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page size must be a positive power of two")
        self.page_size = page_size
        self.tlb = tlb if tlb is not None else TLB()
        self._present_pages: Set[int] = set()
        self.translations = 0
        self.page_faults = 0

    def page_number(self, address: int) -> int:
        if address < 0:
            raise ValueError("negative virtual address")
        return address // self.page_size

    def translate(self, address: int) -> TranslationResult:
        """Translate *address*; a missing PTE is reported as not-present.

        The caller (the platform) decides what a fault costs — the software
        page-fault path for mmap, or nothing at all for HAMS, which fields
        every MMU request in hardware.
        """
        self.translations += 1
        page = self.page_number(address)
        tlb_hit = self.tlb.lookup(page)
        present = page in self._present_pages
        if not present:
            self.page_faults += 1
        latency = self.tlb.hit_ns if tlb_hit else self.tlb.miss_ns
        return TranslationResult(page_number=page, tlb_hit=tlb_hit,
                                 page_present=present, latency_ns=latency)

    def map_page(self, page_number: int) -> None:
        """Install a PTE for *page_number* (page-fault handler completion)."""
        self._present_pages.add(page_number)

    def unmap_page(self, page_number: int) -> None:
        """Remove the PTE (page-cache eviction / munmap)."""
        self._present_pages.discard(page_number)
        self.tlb.invalidate(page_number)

    def is_present(self, page_number: int) -> bool:
        return page_number in self._present_pages

    @property
    def resident_pages(self) -> int:
        return len(self._present_pages)

    def statistics(self) -> Dict[str, float]:
        return {
            "translations": float(self.translations),
            "page_faults": float(self.page_faults),
            "tlb_hit_rate": self.tlb.hit_rate,
            "resident_pages": float(self.resident_pages),
        }
