"""Host-side substrate: CPU, cache hierarchy, MMU/TLB, and the OS storage stack.

These models replace the gem5 full-system simulation of the paper with a
functional equivalent: the CPU issues an abstract instruction stream whose
load/store mix comes from Table III, the cache hierarchy filters memory
references, the MMU translates and faults, and the OS stack charges the
software latencies (page-fault handling, context switches, file system,
blk-mq, NVMe driver) that Figure 7a decomposes.
"""

from .cpu import CPUModel
from .caches import CacheHierarchy, CacheLevel
from .mmu import MMU, TLB
from .os_stack import OSStorageStack, PageCache, PageCacheBatchResult

__all__ = [
    "CPUModel",
    "CacheHierarchy",
    "CacheLevel",
    "MMU",
    "TLB",
    "OSStorageStack",
    "PageCache",
    "PageCacheBatchResult",
]
