"""Simplified CPU core model.

The evaluation metrics that involve the CPU — IPC (Figure 7b), MIPS
(the headline 97 %/119 % claim), execution-time breakdowns (Figure 17) — all
derive from an in-order, blocking-memory model: non-memory instructions
retire at a base CPI, memory instructions stall for however long the memory
system below takes.  This matches the paper's observation that "the
application is always stalled until the OS fetches data from storage".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..config import CPUConfig


@dataclass
class ExecutionAccount:
    """Accumulated cycle/time accounting for one workload run."""

    instructions: int = 0
    memory_instructions: int = 0
    compute_ns: float = 0.0
    memory_stall_ns: float = 0.0
    os_ns: float = 0.0
    storage_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        return self.compute_ns + self.memory_stall_ns + self.os_ns + self.storage_ns

    @property
    def app_ns(self) -> float:
        """Time attributed to the application itself (compute + memory stalls)."""
        return self.compute_ns + self.memory_stall_ns


class CPUModel:
    """An in-order core with a fixed base CPI and blocking memory accesses."""

    def __init__(self, config: CPUConfig) -> None:
        self.config = config
        self.account = ExecutionAccount()

    @property
    def cycle_ns(self) -> float:
        return self.config.cycle_ns

    # -- charging time -------------------------------------------------------------

    def execute_compute(self, instruction_count: int) -> float:
        """Retire *instruction_count* non-memory instructions; returns the time."""
        if instruction_count < 0:
            raise ValueError("instruction count cannot be negative")
        duration = instruction_count * self.config.base_cpi * self.cycle_ns
        self.account.instructions += instruction_count
        self.account.compute_ns += duration
        return duration

    def execute_memory(self, stall_ns: float) -> float:
        """Retire one memory instruction that stalls for *stall_ns*."""
        if stall_ns < 0:
            raise ValueError("stall time cannot be negative")
        self.account.instructions += 1
        self.account.memory_instructions += 1
        self.account.memory_stall_ns += stall_ns
        return stall_ns

    def charge_os(self, duration_ns: float) -> None:
        """Charge OS/software-stack time that keeps the core busy but not useful."""
        if duration_ns < 0:
            raise ValueError("duration cannot be negative")
        self.account.os_ns += duration_ns

    def charge_storage(self, duration_ns: float) -> None:
        """Charge raw device wait time (the "SSD" slice of Figure 17)."""
        if duration_ns < 0:
            raise ValueError("duration cannot be negative")
        self.account.storage_ns += duration_ns

    # -- derived metrics -------------------------------------------------------------

    @property
    def total_cycles(self) -> float:
        return self.account.total_ns / self.cycle_ns

    @property
    def ipc(self) -> float:
        """Instructions per cycle over everything charged so far."""
        cycles = self.total_cycles
        if cycles <= 0:
            return 0.0
        return self.account.instructions / cycles

    @property
    def mips(self) -> float:
        """Million instructions per second of wall-clock simulation time."""
        total_s = self.account.total_ns / 1e9
        if total_s <= 0:
            return 0.0
        return self.account.instructions / 1e6 / total_s

    def breakdown(self) -> Dict[str, float]:
        """Execution-time breakdown matching the Figure 17 categories."""
        return {
            "app_ns": self.account.app_ns,
            "os_ns": self.account.os_ns,
            "ssd_ns": self.account.storage_ns,
            "total_ns": self.account.total_ns,
        }

    def reset(self) -> None:
        self.account = ExecutionAccount()
