"""OS storage-stack model: the software path the MMF baseline traverses.

Section II-B walks through the path a faulting ``mmap`` access takes:
page-fault handler, VMA/inode lookup and locking, the file system building a
``bio``, the blk-mq layer scheduling it, the NVMe driver issuing it, the
interrupt/completion path, and finally the data copy into the allocated
page.  Section III-B measures the aggregate at 15–20 us per fault —
around 6x the Z-NAND read itself — and Figure 7a shows it dominating
execution time.  This module charges those costs and manages the OS page
cache whose capacity determines how often the path is taken.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..config import OSStackConfig

#: An install policy run on every batched page-cache miss: it receives the
#: missing ``(page_number, is_write)`` and returns the evictions its
#: ``PageCache.install`` calls produced, in install order.  The default
#: policy installs the missing page itself; platforms with prefetching
#: installs (migration chunks, readahead) supply their own.
InstallPolicy = Callable[[int, bool], List[Tuple[int, bool]]]


@dataclass
class PageCacheBatchResult:
    """Outcome of one :meth:`PageCache.access_batch` walk.

    ``hits[i]`` is ``True`` when access *i* of the batch was resident;
    ``miss_indices`` lists the missing positions in access order, and
    ``evictions[k]`` holds the ``(page, dirty)`` pairs the *k*-th miss's
    install policy evicted (in install order) — the writeback schedule the
    platforms replay against their devices.
    """

    hits: np.ndarray
    miss_indices: np.ndarray
    evictions: List[List[Tuple[int, bool]]] = field(default_factory=list)

    @property
    def miss_count(self) -> int:
        return len(self.miss_indices)


@dataclass
class FaultCost:
    """Latency decomposition of one page fault serviced by the OS."""

    mmap_ns: float          # page-fault handling + context switches
    io_stack_ns: float      # filesystem + blk-mq + driver + interrupt
    copy_ns: float          # user/kernel data copies
    total_software_ns: float

    @property
    def total_ns(self) -> float:
        return self.total_software_ns


class PageCache:
    """The OS page cache backing a memory-mapped file (LRU, write-back)."""

    def __init__(self, capacity_bytes: int, page_size: int) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self.capacity_pages = max(0, capacity_bytes // page_size)
        self._pages: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.dirty_writebacks = 0
        # Tenant attribution is strictly opt-in (scenario runs): until
        # enable_tenant_tracking() flips the flag, the only cost on the
        # default path is one boolean test per install.
        self._track_tenants = False
        self._install_tenant: Optional[int] = None
        self._owners: Dict[int, int] = {}
        self._tenant_hits: Optional[np.ndarray] = None
        self._tenant_misses: Optional[np.ndarray] = None
        self._evictions_suffered: Optional[np.ndarray] = None
        self._evictions_inflicted: Optional[np.ndarray] = None

    def enable_tenant_tracking(self, tenant_count: int) -> None:
        """Turn on per-tenant attribution for *tenant_count* tenants.

        Afterwards :meth:`access_batch` calls that carry a ``tenants``
        column split hits/misses per tenant and :meth:`install` records
        page ownership, counting cross-tenant evictions (pollution) both
        ways — suffered by the victim's owner, inflicted by the installer.
        The walk itself — residency, LRU order, eviction sequence,
        aggregate counters — is unchanged.
        """
        if tenant_count <= 0:
            raise ValueError("tenant count must be positive")
        self._track_tenants = True
        self._owners = {}
        self._tenant_hits = np.zeros(tenant_count, dtype=np.int64)
        self._tenant_misses = np.zeros(tenant_count, dtype=np.int64)
        self._evictions_suffered = np.zeros(tenant_count, dtype=np.int64)
        self._evictions_inflicted = np.zeros(tenant_count, dtype=np.int64)

    def tenant_statistics(self) -> Dict[int, Dict[str, int]]:
        """Per-tenant cache counters (empty unless tracking is enabled)."""
        if not self._track_tenants:
            return {}
        return {
            tenant: {
                "cache_hits": int(self._tenant_hits[tenant]),
                "cache_misses": int(self._tenant_misses[tenant]),
                "evictions_suffered": int(
                    self._evictions_suffered[tenant]),
                "evictions_inflicted": int(
                    self._evictions_inflicted[tenant]),
            }
            for tenant in range(len(self._tenant_hits))
        }

    def __contains__(self, page_number: int) -> bool:
        return page_number in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def access(self, page_number: int, is_write: bool) -> bool:
        """Touch *page_number*; returns ``True`` when it was resident."""
        if page_number in self._pages:
            self._pages.move_to_end(page_number)
            if is_write:
                self._pages[page_number] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def install(self, page_number: int,
                dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Insert a page after a fault; returns an evicted ``(page, dirty)``."""
        if self.capacity_pages == 0:
            # A zero-capacity cache retains nothing: no insert and, in
            # particular, no eviction — the pre-existing residency set is
            # empty by construction, so there is never a victim to write
            # back.  Every access keeps counting a miss.
            return None
        evicted: Optional[Tuple[int, bool]] = None
        if page_number in self._pages:
            self._pages.move_to_end(page_number)
            if dirty:
                self._pages[page_number] = True
            return None
        if len(self._pages) >= self.capacity_pages:
            victim, victim_dirty = self._pages.popitem(last=False)
            if victim_dirty:
                self.dirty_writebacks += 1
            evicted = (victim, victim_dirty)
        self._pages[page_number] = dirty
        if self._track_tenants:
            installer = self._install_tenant
            if evicted is not None:
                victim_owner = self._owners.pop(evicted[0], None)
                if (victim_owner is not None and installer is not None
                        and victim_owner != installer):
                    self._evictions_suffered[victim_owner] += 1
                    self._evictions_inflicted[installer] += 1
            if installer is not None:
                self._owners[page_number] = installer
        return evicted

    def access_batch(self, pages, writes,
                     install: Optional[InstallPolicy] = None,
                     tenants: Optional[np.ndarray] = None
                     ) -> PageCacheBatchResult:
        """Replay a whole access column through the LRU, order-exactly.

        Equivalent — in residency set, LRU order, dirty flags, the
        ``hits``/``misses``/``dirty_writebacks`` counters and the eviction
        ``(page, dirty)`` sequence — to the scalar loop::

            for page, is_write in zip(pages, writes):
                if not self.access(page, is_write):
                    install(page, is_write)

        where the default install policy is
        ``self.install(page, dirty=is_write)`` (the single-page policy of
        Optane memory mode and the buffered ULL bypass).  A custom policy
        may install any set of pages (migration chunks, readahead) but must
        route every insertion through :meth:`install` and must not call
        :meth:`access` re-entrantly.

        The walk is run-length collapsed: consecutive accesses to the same
        page are folded into one LRU transition, because once a page is
        resident the rest of its run can only hit (a hit moves the page to
        the MRU end and never evicts).  Residency is re-checked after every
        install, so policies that fail to leave the missing page resident —
        a zero-capacity cache, or a chunk install whose own tail evicts the
        faulting page again — fall out of the collapse and keep missing,
        exactly as the scalar loop would.

        *tenants* (an int column parallel to *pages*) is only consulted
        when :meth:`enable_tenant_tracking` is on: it attributes each
        hit/miss to its tenant and tags installs with the faulting tenant
        for ownership/pollution accounting.  It never alters the walk.
        """
        pages = np.ascontiguousarray(pages, dtype=np.int64)
        writes = np.asarray(writes, dtype=bool)
        count = len(pages)
        if len(writes) != count:
            raise ValueError("pages and writes must be equal-length")
        hits = np.ones(count, dtype=bool)
        miss_positions: List[int] = []
        evictions: List[List[Tuple[int, bool]]] = []
        if count == 0:
            return PageCacheBatchResult(hits=hits,
                                        miss_indices=np.empty(0, dtype=np.int64),
                                        evictions=evictions)
        if install is None:
            install = self._install_single_page

        # Maximal same-page runs: run k covers [starts[k], ends[k]).
        change = np.flatnonzero(pages[1:] != pages[:-1]) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), change))
        ends = np.concatenate((change, np.asarray([count], dtype=np.int64)))
        run_pages = pages[starts].tolist()
        starts_list = starts.tolist()
        ends_list = ends.tolist()
        # Prefix write counts: any write in [a, b) iff write_prefix[b] >
        # write_prefix[a] — O(1) per collapsed run tail.
        write_prefix = np.concatenate(
            (np.zeros(1, dtype=np.int64),
             np.cumsum(writes, dtype=np.int64))).tolist()
        writes_list = writes.tolist()

        residency = self._pages
        move_to_end = residency.move_to_end
        attribute = self._track_tenants and tenants is not None
        if attribute:
            tenant_column = np.ascontiguousarray(tenants, dtype=np.int64)
            if len(tenant_column) != count:
                raise ValueError("tenants column must match the batch")
            tenants_list = tenant_column.tolist()
            for start, end, page in zip(starts_list, ends_list, run_pages):
                index = start
                while index < end and page not in residency:
                    miss_positions.append(index)
                    self._install_tenant = tenants_list[index]
                    evictions.append(install(page, writes_list[index]))
                    index += 1
                if index < end:
                    move_to_end(page)
                    if write_prefix[end] > write_prefix[index]:
                        residency[page] = True
            self._install_tenant = None
        else:
            for start, end, page in zip(starts_list, ends_list, run_pages):
                index = start
                while index < end and page not in residency:
                    miss_positions.append(index)
                    evictions.append(install(page, writes_list[index]))
                    index += 1
                if index < end:
                    # The rest of the run is guaranteed hits: one MRU move
                    # and one dirty-flag update stand in for each scalar
                    # touch.
                    move_to_end(page)
                    if write_prefix[end] > write_prefix[index]:
                        residency[page] = True
        miss_count = len(miss_positions)
        miss_indices = np.asarray(miss_positions, dtype=np.int64)
        hits[miss_indices] = False
        self.hits += count - miss_count
        self.misses += miss_count
        if attribute:
            width = len(self._tenant_hits)
            missed = np.bincount(tenant_column[miss_indices],
                                 minlength=width)
            touched = np.bincount(tenant_column, minlength=width)
            self._tenant_misses += missed
            self._tenant_hits += touched - missed
        return PageCacheBatchResult(hits=hits, miss_indices=miss_indices,
                                    evictions=evictions)

    def _install_single_page(self, page_number: int,
                             is_write: bool) -> List[Tuple[int, bool]]:
        """The default install policy: the missing page itself."""
        evicted = self.install(page_number, dirty=is_write)
        return [] if evicted is None else [evicted]

    def resident_pages(self) -> List[int]:
        """The resident pages in LRU order (least recently used first)."""
        return list(self._pages)

    def clean(self, page_number: int) -> None:
        """Clear the dirty flag after the page has been written back."""
        if page_number in self._pages:
            self._pages[page_number] = False

    def dirty_pages(self) -> List[int]:
        return [page for page, dirty in self._pages.items() if dirty]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def statistics(self, prefix: str = "page_cache") -> Dict[str, float]:
        """The cache's observable counters, keyed under *prefix*.

        The DRAM-cache platforms merge this into their ``RunResult`` extras
        (``dram_cache_*`` / ``page_buffer_*``), where the golden
        scalar-vs-batched tests compare every entry exactly.
        """
        return {
            f"{prefix}_hit_rate": self.hit_rate,
            f"{prefix}_hits": float(self.hits),
            f"{prefix}_misses": float(self.misses),
            f"{prefix}_writebacks": float(self.dirty_writebacks),
        }


class OSStorageStack:
    """Charges the software latencies of the mmap / storage-stack path."""

    def __init__(self, config: OSStackConfig, page_size: int) -> None:
        self.config = config
        self.page_size = page_size
        self.page_faults_serviced = 0
        self.context_switches = 0
        self.total_mmap_ns = 0.0
        self.total_io_stack_ns = 0.0
        self.total_copy_ns = 0.0

    def fault_cost(self, page_bytes: Optional[int] = None,
                   needs_io: bool = True) -> FaultCost:
        """Software cost of one page fault.

        ``needs_io`` distinguishes a *minor* fault (page already in the page
        cache, only the PTE is missing) from a *major* fault that has to go
        down the I/O stack to the device.
        """
        page_bytes = page_bytes if page_bytes is not None else self.page_size
        mmap_ns = self.config.mmap_overhead_ns
        io_ns = self.config.io_stack_ns if needs_io else 0.0
        copy_ns = (page_bytes / self.config.copy_bandwidth_bytes_per_ns
                   if needs_io else 0.0)
        total = mmap_ns + io_ns + copy_ns
        self.page_faults_serviced += 1
        self.context_switches += 2 if needs_io else 1
        self.total_mmap_ns += mmap_ns
        self.total_io_stack_ns += io_ns
        self.total_copy_ns += copy_ns
        return FaultCost(mmap_ns=mmap_ns, io_stack_ns=io_ns, copy_ns=copy_ns,
                         total_software_ns=total)

    def writeback_cost(self, page_bytes: Optional[int] = None) -> float:
        """Software cost of writing a dirty page back through the I/O stack."""
        page_bytes = page_bytes if page_bytes is not None else self.page_size
        io_ns = self.config.io_stack_ns
        copy_ns = page_bytes / self.config.copy_bandwidth_bytes_per_ns
        self.total_io_stack_ns += io_ns
        self.total_copy_ns += copy_ns
        return io_ns + copy_ns

    def msync_cost(self, dirty_page_count: int) -> float:
        """Software cost of an msync()-style flush of *dirty_page_count* pages."""
        if dirty_page_count < 0:
            raise ValueError("dirty_page_count cannot be negative")
        if dirty_page_count == 0:
            return self.config.context_switch_ns
        return (self.config.context_switch_ns
                + dirty_page_count * self.writeback_cost())

    @property
    def readahead_pages(self) -> int:
        return self.config.readahead_pages

    def statistics(self) -> Dict[str, float]:
        return {
            "page_faults_serviced": float(self.page_faults_serviced),
            "context_switches": float(self.context_switches),
            "total_mmap_ns": self.total_mmap_ns,
            "total_io_stack_ns": self.total_io_stack_ns,
            "total_copy_ns": self.total_copy_ns,
        }
