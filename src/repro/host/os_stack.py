"""OS storage-stack model: the software path the MMF baseline traverses.

Section II-B walks through the path a faulting ``mmap`` access takes:
page-fault handler, VMA/inode lookup and locking, the file system building a
``bio``, the blk-mq layer scheduling it, the NVMe driver issuing it, the
interrupt/completion path, and finally the data copy into the allocated
page.  Section III-B measures the aggregate at 15–20 us per fault —
around 6x the Z-NAND read itself — and Figure 7a shows it dominating
execution time.  This module charges those costs and manages the OS page
cache whose capacity determines how often the path is taken.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import OSStackConfig


@dataclass
class FaultCost:
    """Latency decomposition of one page fault serviced by the OS."""

    mmap_ns: float          # page-fault handling + context switches
    io_stack_ns: float      # filesystem + blk-mq + driver + interrupt
    copy_ns: float          # user/kernel data copies
    total_software_ns: float

    @property
    def total_ns(self) -> float:
        return self.total_software_ns


class PageCache:
    """The OS page cache backing a memory-mapped file (LRU, write-back)."""

    def __init__(self, capacity_bytes: int, page_size: int) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self.capacity_pages = max(0, capacity_bytes // page_size)
        self._pages: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.dirty_writebacks = 0

    def __contains__(self, page_number: int) -> bool:
        return page_number in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def access(self, page_number: int, is_write: bool) -> bool:
        """Touch *page_number*; returns ``True`` when it was resident."""
        if page_number in self._pages:
            self._pages.move_to_end(page_number)
            if is_write:
                self._pages[page_number] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def install(self, page_number: int,
                dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Insert a page after a fault; returns an evicted ``(page, dirty)``."""
        evicted: Optional[Tuple[int, bool]] = None
        if page_number in self._pages:
            self._pages.move_to_end(page_number)
            if dirty:
                self._pages[page_number] = True
            return None
        if self.capacity_pages and len(self._pages) >= self.capacity_pages:
            victim, victim_dirty = self._pages.popitem(last=False)
            if victim_dirty:
                self.dirty_writebacks += 1
            evicted = (victim, victim_dirty)
        if self.capacity_pages:
            self._pages[page_number] = dirty
        return evicted

    def clean(self, page_number: int) -> None:
        """Clear the dirty flag after the page has been written back."""
        if page_number in self._pages:
            self._pages[page_number] = False

    def dirty_pages(self) -> List[int]:
        return [page for page, dirty in self._pages.items() if dirty]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class OSStorageStack:
    """Charges the software latencies of the mmap / storage-stack path."""

    def __init__(self, config: OSStackConfig, page_size: int) -> None:
        self.config = config
        self.page_size = page_size
        self.page_faults_serviced = 0
        self.context_switches = 0
        self.total_mmap_ns = 0.0
        self.total_io_stack_ns = 0.0
        self.total_copy_ns = 0.0

    def fault_cost(self, page_bytes: Optional[int] = None,
                   needs_io: bool = True) -> FaultCost:
        """Software cost of one page fault.

        ``needs_io`` distinguishes a *minor* fault (page already in the page
        cache, only the PTE is missing) from a *major* fault that has to go
        down the I/O stack to the device.
        """
        page_bytes = page_bytes if page_bytes is not None else self.page_size
        mmap_ns = self.config.mmap_overhead_ns
        io_ns = self.config.io_stack_ns if needs_io else 0.0
        copy_ns = (page_bytes / self.config.copy_bandwidth_bytes_per_ns
                   if needs_io else 0.0)
        total = mmap_ns + io_ns + copy_ns
        self.page_faults_serviced += 1
        self.context_switches += 2 if needs_io else 1
        self.total_mmap_ns += mmap_ns
        self.total_io_stack_ns += io_ns
        self.total_copy_ns += copy_ns
        return FaultCost(mmap_ns=mmap_ns, io_stack_ns=io_ns, copy_ns=copy_ns,
                         total_software_ns=total)

    def writeback_cost(self, page_bytes: Optional[int] = None) -> float:
        """Software cost of writing a dirty page back through the I/O stack."""
        page_bytes = page_bytes if page_bytes is not None else self.page_size
        io_ns = self.config.io_stack_ns
        copy_ns = page_bytes / self.config.copy_bandwidth_bytes_per_ns
        self.total_io_stack_ns += io_ns
        self.total_copy_ns += copy_ns
        return io_ns + copy_ns

    def msync_cost(self, dirty_page_count: int) -> float:
        """Software cost of an msync()-style flush of *dirty_page_count* pages."""
        if dirty_page_count < 0:
            raise ValueError("dirty_page_count cannot be negative")
        if dirty_page_count == 0:
            return self.config.context_switch_ns
        return (self.config.context_switch_ns
                + dirty_page_count * self.writeback_cost())

    @property
    def readahead_pages(self) -> int:
        return self.config.readahead_pages

    def statistics(self) -> Dict[str, float]:
        return {
            "page_faults_serviced": float(self.page_faults_serviced),
            "context_switches": float(self.context_switches),
            "total_mmap_ns": self.total_mmap_ns,
            "total_io_stack_ns": self.total_io_stack_ns,
            "total_copy_ns": self.total_copy_ns,
        }
