"""On-chip cache hierarchy (L1D + L2) with LRU set-associative levels.

Memory references from a workload trace first filter through the caches;
only misses reach the memory expansion platform underneath.  The paper's
motivation section points out that "a large fraction of the load/store
instructions suffer from page cache misses due to the poor data locality" of
mmap-bench and SQLite — the hierarchy here lets that locality (or lack of
it) emerge from the trace instead of being an assumed constant.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import CacheConfig


def _as_list(values) -> list:
    """Plain-Python element list (fast scalar iteration over numpy columns)."""
    return values.tolist() if isinstance(values, np.ndarray) else list(values)


@dataclass
class CacheAccessResult:
    """Outcome of one cache hierarchy lookup."""

    hit_level: Optional[str]
    latency_ns: float
    writeback: bool = False

    @property
    def is_miss(self) -> bool:
        return self.hit_level is None


class CacheLevel:
    """One set-associative, write-back, LRU cache level."""

    def __init__(self, name: str, size_bytes: int, line_size: int,
                 latency_ns: float, associativity: int = 8) -> None:
        if size_bytes < line_size:
            raise ValueError("cache smaller than one line")
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        self.name = name
        self.line_size = line_size
        self.latency_ns = latency_ns
        self.associativity = associativity
        self.num_sets = max(1, size_bytes // (line_size * associativity))
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.line_size
        return line % self.num_sets, line

    def lookup(self, address: int, is_write: bool) -> bool:
        """Probe the cache; returns ``True`` on a hit and updates LRU order."""
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            ways.move_to_end(tag)
            if is_write:
                ways[tag] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, address: int, dirty: bool) -> Optional[bool]:
        """Install the line holding *address*.

        Returns the dirty flag of an evicted victim (``None`` when no
        eviction happened); the caller decides whether the writeback costs
        anything.
        """
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        victim_dirty: Optional[bool] = None
        if tag in ways:
            ways.move_to_end(tag)
            if dirty:
                ways[tag] = True
            return None
        if len(ways) >= self.associativity:
            _, victim_dirty = ways.popitem(last=False)
            if victim_dirty:
                self.writebacks += 1
        ways[tag] = dirty
        return victim_dirty

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheHierarchy:
    """L1D + unified L2, both write-back / write-allocate."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.l1 = CacheLevel("L1D", config.l1_size_bytes, config.line_size,
                             config.l1_latency_ns, associativity=8)
        self.l2 = CacheLevel("L2", config.l2_size_bytes, config.line_size,
                             config.l2_latency_ns, associativity=16)
        self.accesses = 0
        self.memory_accesses = 0

    def access(self, address: int, is_write: bool) -> CacheAccessResult:
        """Look up one reference; on a full miss the caller goes to memory.

        The returned latency covers only the on-chip portion; memory latency
        is added by the platform that owns the hierarchy.
        """
        if address < 0:
            raise ValueError("negative address")
        self.accesses += 1
        if self.l1.lookup(address, is_write):
            return CacheAccessResult(hit_level="L1", latency_ns=self.l1.latency_ns)
        if self.l2.lookup(address, is_write):
            self.l1.fill(address, dirty=is_write)
            latency = self.l1.latency_ns + self.l2.latency_ns
            return CacheAccessResult(hit_level="L2", latency_ns=latency)
        # Full miss: allocate in both levels, report any dirty victim.
        self.memory_accesses += 1
        victim_dirty = self.l2.fill(address, dirty=is_write)
        self.l1.fill(address, dirty=is_write)
        latency = self.l1.latency_ns + self.l2.latency_ns
        return CacheAccessResult(hit_level=None, latency_ns=latency,
                                 writeback=bool(victim_dirty))

    def access_batch(self, addresses: Sequence[int],
                     writes: Sequence[bool]
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Filter a whole chunk of fine-grained references through the caches.

        Performs exactly the lookup/fill sequence :meth:`access` performs per
        reference — the cache state after the batch is indistinguishable from
        the scalar walk — but returns two columnar arrays instead of one
        result object per access: a boolean full-miss mask and the on-chip
        latency of every reference.  Addresses are assumed non-negative (the
        :class:`~repro.workloads.trace.AccessStream` validates this at
        construction).
        """
        count = len(addresses)
        miss = np.empty(count, dtype=bool)
        latency = np.empty(count, dtype=np.float64)
        l1, l2 = self.l1, self.l2
        l1_latency = l1.latency_ns
        full_latency = l1.latency_ns + l2.latency_ns
        memory_accesses = 0
        self.accesses += count
        for index, (address, is_write) in enumerate(
                zip(_as_list(addresses), _as_list(writes))):
            if l1.lookup(address, is_write):
                miss[index] = False
                latency[index] = l1_latency
                continue
            if l2.lookup(address, is_write):
                l1.fill(address, dirty=is_write)
                miss[index] = False
                latency[index] = full_latency
                continue
            memory_accesses += 1
            l2.fill(address, dirty=is_write)
            l1.fill(address, dirty=is_write)
            miss[index] = True
            latency[index] = full_latency
        self.memory_accesses += memory_accesses
        return miss, latency

    def record_bypass(self, count: int = 1) -> None:
        """Account *count* references that bypass L1/L2 entirely.

        Page-granular references (the mmap microbenchmark) stream through
        the hierarchy without reuse; the replay loop sends them straight
        off-chip and records them here so hit/miss statistics stay honest
        without the loop reaching into the counters by hand.
        """
        self.accesses += count
        self.memory_accesses += count

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.memory_accesses / self.accesses

    def statistics(self) -> Dict[str, float]:
        return {
            "accesses": float(self.accesses),
            "memory_accesses": float(self.memory_accesses),
            "l1_hit_rate": self.l1.hit_rate,
            "l2_hit_rate": self.l2.hit_rate,
            "miss_rate": self.miss_rate,
        }
