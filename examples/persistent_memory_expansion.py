#!/usr/bin/env python3
"""Persistent-memory expansion: power failure and recovery on HAMS.

This example drives the HAMS controller directly (below the platform layer)
to show the persistency machinery of Sections IV-B and V-C:

1. a working set is written through the MoS address space, dirtying NVDIMM
   cache entries and pushing evictions to the ULL-Flash,
2. NVMe write commands are left *in flight* (journal tag set, no completion)
   when the power fails,
3. the supercapacitors flush the volatile buffers, and
4. on power-up the recovery procedure scans the pinned region, finds the
   interrupted commands and replays them, leaving a consistent device.

Run with::

    python examples/persistent_memory_expansion.py
"""

from __future__ import annotations

from repro import ExperimentScale, Session
from repro.core.hams_controller import HAMSController
from repro.nvme.commands import build_write
from repro.units import KB, to_ms


def main() -> None:
    # The session owns the scaled Table II configuration; this example
    # drives the controller below the platform layer, so it only borrows
    # the config.
    session = Session(ExperimentScale(capacity_scale=1 / 256))
    config = session.config.with_hams(integration="tight", mode="extend")
    hams = HAMSController(config)
    hams.ssd.precondition(0, 4096)

    print("MoS address space:",
          f"{hams.mos_capacity_bytes / 2**30:.1f} GiB backed by ULL-Flash,")
    print("NVDIMM cache:",
          f"{hams.nvdimm.cacheable_bytes / 2**20:.0f} MiB "
          f"({hams.tag_array.entries_count} direct-mapped 128 KiB entries)\n")

    # -- phase 1: dirty a working set through the MoS space -------------------
    now = 0.0
    page = hams.mos_page_bytes
    for index in range(64):
        result = hams.access(index * page, 64, is_write=True, at_ns=now)
        now = result.finish_ns
    print(f"phase 1: wrote 64 MoS pages, "
          f"{hams.tag_array.dirty_count()} dirty cache entries, "
          f"hit rate {hams.hit_rate:.2f}")

    # -- phase 2: leave NVMe writes in flight and pull the plug ---------------
    in_flight = []
    for index in range(3):
        command = build_write(lba=hams.address_manager.lba_of(index),
                              length_bytes=KB(128),
                              prp=hams.address_manager.pinned_region_base)
        hams.queue_pair.sq.submit(command)
        command.mark_submitted(now)
        in_flight.append(command)
    print(f"phase 2: {len(in_flight)} eviction commands issued but not yet "
          "completed (journal tags = 1)")

    down_at = hams.power_failure(at_ns=now)
    print(f"power failure at {to_ms(now):.2f} ms; supercap flush and NVDIMM "
          f"backup complete at {to_ms(down_at):.2f} ms")

    # -- phase 3: power restore and recovery ----------------------------------
    report = hams.recover(at_ns=down_at)
    print("\nrecovery report:")
    print(f"  interrupted commands found : {report.pending_commands_found}")
    print(f"  commands replayed          : {report.commands_reissued}")
    print(f"  NVDIMM restore time        : {to_ms(report.nvdimm_restore_ns):.2f} ms")
    print(f"  replay time                : {report.replay_ns / 1e3:.1f} us")
    print(f"  consistent                 : {report.consistent}")

    # -- phase 4: the MoS space is usable again --------------------------------
    result = hams.access(0, 64, is_write=False, at_ns=down_at + report.total_recovery_ns)
    print(f"\nphase 4: first access after recovery completed in "
          f"{result.latency_ns / 1e3:.1f} us (hit={result.hit})")
    assert report.consistent


if __name__ == "__main__":
    main()
