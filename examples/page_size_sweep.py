#!/usr/bin/env python3
"""MoS page-size sweep (the Figure 20a sensitivity study).

The MoS page is the unit the HAMS cache logic fills from and evicts to the
ULL-Flash.  Small pages waste the ULL-Flash's internal parallelism and incur
frequent fills; huge pages drag too much data on every miss of a random
workload.  This example sweeps the page size for one sequential and one
random SQLite workload on advanced HAMS and reports where the sweet spot
falls (the paper finds 128 KB best for most workloads).

Run with::

    python examples/page_size_sweep.py
"""

from __future__ import annotations

from repro import ExperimentScale, Session
from repro.analysis.reporting import format_table
from repro.units import KB

PAGE_SIZES = [KB(4), KB(16), KB(64), KB(128), KB(256), KB(1024)]
WORKLOADS = ["seqSel", "rndSel"]


def main() -> None:
    session = Session(ExperimentScale(capacity_scale=1 / 64,
                                      max_accesses=3_000))
    # One labelled run per swept page size; the twelve runs fan out over
    # the worker pool and come back keyed by their "4KB".."1024KB" labels.
    sweep = session.sweep(
        "hams-TE", WORKLOADS, "hams", "mos_page_bytes", PAGE_SIZES,
        labels=[f"{page_size // 1024}KB" for page_size in PAGE_SIZES])
    table = {}
    details = {}
    for workload in WORKLOADS:
        table[workload] = {}
        for page_size in PAGE_SIZES:
            label = f"{page_size // 1024}KB"
            result = sweep.get(label, workload)
            table[workload][label] = result.operations_per_second
            details[(workload, label)] = result.extras["nvdimm_cache_hit_rate"]

    print(format_table(table, title="hams-TE throughput (ops/s) vs MoS page size",
                       float_format="{:.0f}", row_header="workload"))
    print()
    hit_table = {
        workload: {label: details[(workload, label)]
                   for label in (f"{size // 1024}KB" for size in PAGE_SIZES)}
        for workload in WORKLOADS
    }
    print(format_table(hit_table, title="MoS cache hit rate vs page size",
                       row_header="workload"))

    for workload in WORKLOADS:
        best = max(table[workload], key=table[workload].get)
        print(f"\nbest page size for {workload}: {best} "
              f"(paper: 128KB wins for most workloads)")


if __name__ == "__main__":
    main()
