#!/usr/bin/env python3
"""SQLite workload study: the Figure 16b comparison as a library user sees it.

The SQLite benchmark is the paper's example of a data-intensive application
whose working set exceeds the NVDIMM: fine-grained (8-100 B) accesses, DBMS
computation between them, and an 11 GB database.  This example replays the
five SQLite workloads of Table III on a chosen set of platforms, reports the
throughput and the MoS/page-cache hit rates, and prints the per-workload
speedup of advanced HAMS over the software baseline.

Run with::

    python examples/sqlite_workload_study.py
"""

from __future__ import annotations

from repro import ExperimentScale, Session
from repro.analysis.reporting import format_table
from repro.workloads.registry import SQLITE_WORKLOADS

PLATFORMS = ["mmap", "flatflash-M", "optane-M", "hams-LE", "hams-TE", "oracle"]


def main() -> None:
    # The 6x5 matrix fans out over the session's process pool; this is the
    # same preset the CLI exposes as `python -m repro run sqlite`.
    session = Session(ExperimentScale(capacity_scale=1 / 64,
                                      max_accesses=3_000))
    experiment = session.compare(PLATFORMS, SQLITE_WORKLOADS)

    throughput = {
        workload: {platform: experiment.get(platform, workload)
                   .operations_per_second
                   for platform in PLATFORMS}
        for workload in SQLITE_WORKLOADS
    }
    print(format_table(throughput, title="SQLite throughput (ops/s)",
                       float_format="{:.0f}", row_header="workload"))

    hit_rates = {
        workload: {
            "hams-TE MoS hit rate": experiment.get("hams-TE", workload)
            .extras["nvdimm_cache_hit_rate"],
            "mmap page-cache hit rate": experiment.get("mmap", workload)
            .extras["page_cache_hit_rate"],
        }
        for workload in SQLITE_WORKLOADS
    }
    print()
    print(format_table(hit_rates, title="Cache behaviour", row_header="workload"))

    print()
    for workload in SQLITE_WORKLOADS:
        speedup = (experiment.get("hams-TE", workload).operations_per_second
                   / experiment.get("mmap", workload).operations_per_second)
        print(f"hams-TE vs mmap on {workload:7s}: {speedup:5.2f}x")
    print(f"\naverage: {experiment.mean_speedup('hams-TE', 'mmap'):.2f}x "
          "(the paper reports ~1.37x for the SQLite suite)")


if __name__ == "__main__":
    main()
