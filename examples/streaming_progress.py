#!/usr/bin/env python3
"""Streaming execution: watch an experiment matrix complete run by run.

The blocking verbs (``session.compare(...)``) return only when the whole
(platform x workload) matrix is done.  ``session.submit(...)`` returns an
:class:`repro.ExperimentHandle` immediately instead: results stream out as
they complete, ``progress()`` snapshots completed/total/ETA at any moment,
``events()`` exposes the typed start/finish/cache-hit records, and
``result()`` folds everything into the exact same
:class:`repro.ExperimentResult` the blocking verb would have returned —
bit-identical on the serial, pool and sharded executors alike.

Run with::

    PYTHONPATH=src python examples/streaming_progress.py
"""

from __future__ import annotations

from repro import Session
from repro.runner.specs import matrix_specs
from repro.workloads.registry import ExperimentScale

#: Small scale so the example finishes in seconds.
SCALE = ExperimentScale(capacity_scale=1 / 256, min_accesses=400,
                        max_accesses=800)

PLATFORMS = ["mmap", "hams-TE", "oracle"]
WORKLOADS = ["seqRd", "rndWr", "update"]


def main() -> None:
    session = Session(SCALE)
    specs = matrix_specs(PLATFORMS, WORKLOADS)

    # submit() returns at once; iterating the handle drives execution.
    handle = session.submit(specs, name="streaming-demo")
    print(f"submitted {handle.total} runs to the {handle.executor} executor")
    for run in handle.iter_results():
        flag = "cache" if run.cache_hit else f"{run.result.total_ns:.0f} ns"
        print(f"  [{handle.progress().format()}]  "
              f"{run.spec.platform:10s} x {run.spec.workload:7s} ({flag})")

    experiment = handle.result()  # == session.collect(specs), bit for bit
    print()
    print("mean speedup of hams-TE over mmap: "
          f"{experiment.mean_speedup('hams-TE', 'mmap'):.2f}x")
    kinds = [event.kind for event in handle.events()]
    print(f"{len(kinds)} events observed "
          f"({kinds.count('start')} starts, {kinds.count('finish')} "
          f"finishes, {kinds.count('cache-hit')} cache hits)")


if __name__ == "__main__":
    main()
