#!/usr/bin/env python3
"""Quickstart: run one workload on advanced HAMS and on the mmap baseline.

This is the smallest end-to-end use of the public :mod:`repro.api` facade:

1. open a :class:`repro.Session` at an experiment scale (everything —
   dataset, NVDIMM, ULL-Flash — is shrunk together so the run finishes in
   seconds),
2. ``compare()`` the platforms by their paper-legend names on a Table III
   workload,
3. read throughput, execution-time breakdown and energy off the results.

The session fans the four platform replays out over a process pool on a
multi-core machine (see also ``python -m repro run``).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ExperimentScale, Session


def main() -> None:
    scale = ExperimentScale(capacity_scale=1 / 64, max_accesses=4_000)
    session = Session(scale)
    workload = "seqRd"

    print(f"Replaying workload {workload!r} "
          f"({len(session.trace(workload))} memory references)\n")

    header = (f"{'platform':12s} {'ops/s':>12s} {'total ms':>10s} "
              f"{'os %':>7s} {'ssd %':>7s} {'energy mJ':>10s}")
    print(header)
    print("-" * len(header))

    experiment = session.compare(("mmap", "hams-LE", "hams-TE", "oracle"),
                                 (workload,))
    results = {}
    for platform in ("mmap", "hams-LE", "hams-TE", "oracle"):
        result = experiment.get(platform, workload)
        results[platform] = result
        fractions = result.breakdown_fractions()
        print(f"{platform:12s} {result.operations_per_second:12.0f} "
              f"{result.total_ns / 1e6:10.2f} "
              f"{100 * fractions['os']:7.1f} {100 * fractions['ssd']:7.1f} "
              f"{result.energy.total_nj / 1e6:10.1f}")

    speedup = (results["hams-TE"].operations_per_second
               / results["mmap"].operations_per_second)
    saving = 1.0 - (results["hams-TE"].energy.total_nj
                    / results["mmap"].energy.total_nj)
    print(f"\nadvanced HAMS vs mmap: {speedup:.2f}x faster, "
          f"{100 * saving:.0f}% less energy")
    print("(the paper reports +119% performance and -45% energy for hams-TE)")


if __name__ == "__main__":
    main()
