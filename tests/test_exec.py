"""Tests for the unified executor layer (:mod:`repro.exec`).

The load-bearing contracts, in order of importance:

1. **Tier parity** — ``ExperimentHandle.result()`` is bit-identical (as
   canonically serialised) to the pre-refactor blocking verbs on the
   serial, pool and sharded executors, for the same specs.
2. **Exactly-once streaming** — ``iter_results()`` yields every run
   exactly once, in completion order, with correct cache-hit flags.
3. **Clean cancellation** — ``cancel()`` mid-matrix stops between runs,
   leaves the content-addressed cache (and any spool claims) consistent,
   and a resumed ``submit()`` completes from cache.
4. **Observability** — ``progress()`` advances monotonically to done,
   ``events()`` carries the typed records, and the ``repro.events/1``
   JSONL artifact round-trips.
"""

from __future__ import annotations

import json
import threading
import time as time_module

import pytest

from repro.api import Session, compare
from repro.distrib import (
    ShardSpool,
    execute_shard,
    plan_shards,
    work_spool,
)
from repro.exec import (
    EVENTS_SCHEMA,
    CancelToken,
    Event,
    ExperimentCancelled,
    Executor,
    PoolExecutor,
    SerialExecutor,
    ShardedExecutor,
    read_events,
    resolve_executor,
)
from repro.runner.artifacts import experiment_to_artifact
from repro.runner.parallel import ParallelExperimentRunner
from repro.runner.specs import RunSpec, matrix_specs

from repro.workloads.registry import ExperimentScale

#: Small enough for sub-second matrices, large enough for real replay work.
TINY = ExperimentScale(capacity_scale=1 / 512, min_accesses=120,
                       max_accesses=240)
#: >= 3 platforms — the acceptance criterion's parity matrix.
PLATFORMS = ["mmap", "hams-TE", "oracle"]
WORKLOADS = ["seqRd", "update"]

EXECUTORS = ["serial", "pool", "sharded"]


def tiny_session(**kwargs) -> Session:
    return Session(TINY, workers=1, **kwargs)


def canonical_runs(experiment) -> str:
    """The artifact 'runs' array exactly as it would be written to disk."""
    config = ParallelExperimentRunner(TINY, workers=1).config
    return json.dumps(experiment_to_artifact("x", experiment, config)["runs"],
                      sort_keys=True)


@pytest.fixture()
def specs():
    return matrix_specs(PLATFORMS, WORKLOADS)


class TestExecutorParity:
    """Acceptance criterion: every tier folds to the identical result."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_result_is_bit_identical_to_blocking_collect(self, executor,
                                                         specs):
        expected = canonical_runs(
            ParallelExperimentRunner(TINY, workers=1).collect(specs))
        session = tiny_session(executor=executor, shards=2)
        handle = session.submit(specs, name="parity")
        assert canonical_runs(handle.result()) == expected

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_blocking_verbs_ride_the_executor(self, executor, specs):
        """collect/compare are thin consumers of submit() on every tier."""
        expected = canonical_runs(
            ParallelExperimentRunner(TINY, workers=1).collect(specs))
        session = tiny_session(executor=executor, shards=2)
        assert canonical_runs(session.collect(specs)) == expected
        assert canonical_runs(
            session.compare(PLATFORMS, WORKLOADS)) == expected

    def test_sweep_labels_survive_every_tier(self):
        baseline = None
        for executor in EXECUTORS:
            session = tiny_session(executor=executor, shards=2)
            experiment = session.sweep(
                "hams-TE", ["seqRd"], "hams", "mos_page_bytes",
                [4096, 131072], labels=["4KB", "128KB"])
            assert sorted(experiment.platforms()) == ["128KB", "4KB"]
            serialised = canonical_runs(experiment)
            if baseline is None:
                baseline = serialised
            assert serialised == baseline

    def test_pool_executor_with_real_pool_matches(self, specs):
        """workers > 1 exercises imap_unordered streaming, same result."""
        expected = canonical_runs(
            ParallelExperimentRunner(TINY, workers=1).collect(specs))
        session = Session(TINY, workers=2, executor="pool")
        assert canonical_runs(session.submit(specs).result()) == expected

    def test_sharded_executor_with_spool_matches(self, tmp_path, specs):
        expected = canonical_runs(
            ParallelExperimentRunner(TINY, workers=1).collect(specs))
        session = tiny_session(executor="sharded", shards=3,
                               spool_dir=tmp_path / "spool")
        assert canonical_runs(session.submit(specs).result()) == expected
        # The spool keeps the shard artifacts behind, like the old tier.
        results = list((tmp_path / "spool" / "results").glob("shard-*.json"))
        assert len(results) == 3
        # ... and per-run progress records for each executed shard.
        progress = list((tmp_path / "spool" / "progress").glob("*.jsonl"))
        assert len(progress) == 3

    def test_one_shot_compare_accepts_the_new_knobs(self, tmp_path):
        """Satellite: compare() gained shards/spool_dir like sweep()."""
        direct = compare(["mmap", "oracle"], ["seqRd"], scale=TINY,
                         workers=1)
        sharded = compare(["mmap", "oracle"], ["seqRd"], scale=TINY,
                          workers=1, shards=2,
                          spool_dir=tmp_path / "spool", wait_timeout=60.0)
        assert canonical_runs(sharded) == canonical_runs(direct)
        assert list((tmp_path / "spool" / "results").glob("shard-*.json"))


class TestStreaming:
    def test_iter_results_yields_every_run_exactly_once(self, specs):
        handle = tiny_session().submit(specs)
        runs = list(handle.iter_results())
        assert sorted(run.index for run in runs) == list(range(len(specs)))
        assert all(not run.cache_hit for run in runs)
        assert [run.spec for run in runs] == \
            [specs[run.index] for run in runs]
        # Resuming the iterator after exhaustion yields nothing more.
        assert list(handle.iter_results()) == []

    def test_cache_hits_are_flagged(self, tmp_path, specs):
        cache_dir = tmp_path / "cache"
        tiny_session(cache_dir=cache_dir).submit(specs).result()
        handle = tiny_session(cache_dir=cache_dir).submit(specs)
        runs = list(handle.iter_results())
        assert len(runs) == len(specs)
        assert all(run.cache_hit for run in runs)
        assert handle.progress().cache_hits == len(specs)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_mixed_cache_hits_per_tier(self, tmp_path, executor):
        """A partially warm cache flags exactly the warm runs."""
        cache_dir = tmp_path / f"cache-{executor}"
        warm = [RunSpec("mmap", "seqRd")]
        tiny_session(cache_dir=cache_dir).submit(warm).result()
        session = tiny_session(cache_dir=cache_dir, executor=executor,
                               shards=2)
        specs = [RunSpec("mmap", "seqRd"), RunSpec("oracle", "seqRd")]
        flags = {run.spec.platform: run.cache_hit
                 for run in session.submit(specs).iter_results()}
        assert flags == {"mmap": True, "oracle": False}

    def test_progress_monotonic_to_done(self, specs):
        handle = tiny_session().submit(specs)
        last = -1
        for _ in handle.iter_results():
            snapshot = handle.progress()
            assert snapshot.total == len(specs)
            assert snapshot.completed > last
            last = snapshot.completed
        final = handle.progress()
        assert final.done and final.completed == len(specs)
        assert final.eta_s is None
        assert "6/6" in final.format()

    def test_result_can_be_taken_without_iterating(self, specs):
        assert len(tiny_session().submit(specs).result().results) == \
            len(specs)


class TestEvents:
    def test_serial_event_stream_is_typed_and_ordered(self, specs):
        handle = tiny_session(executor="serial").submit(specs)
        handle.result()
        events = handle.events()
        assert events[0].kind == "submitted"
        assert events[0].executor == "serial"
        assert events[0].total == len(specs)
        per_index = {}
        for event in events[1:]:
            per_index.setdefault(event.index, []).append(event.kind)
        assert per_index == {index: ["start", "finish"]
                             for index in range(len(specs))}

    def test_cache_hit_events(self, tmp_path):
        cache_dir = tmp_path / "cache"
        specs = [RunSpec("mmap", "seqRd")]
        tiny_session(cache_dir=cache_dir).submit(specs).result()
        handle = tiny_session(cache_dir=cache_dir,
                              executor="serial").submit(specs)
        handle.result()
        kinds = [event.kind for event in handle.events()]
        assert kinds == ["submitted", "cache-hit"]

    def test_sharded_events_carry_shard_claims(self, specs):
        handle = tiny_session(executor="sharded", shards=2).submit(specs)
        handle.result()
        kinds = [event.kind for event in handle.events()]
        assert kinds.count("shard-claimed") == 2
        assert kinds.count("finish") == len(specs)

    def test_events_jsonl_artifact(self, tmp_path, specs):
        events_path = tmp_path / "exp.events.jsonl"
        handle = tiny_session().submit(specs, events_path=events_path)
        handle.result()
        lines = events_path.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        assert all(record["schema"] == EVENTS_SCHEMA for record in records)
        assert records[0]["kind"] == "submitted"
        finishes = [record for record in records
                    if record["kind"] == "finish"]
        assert sorted(record["index"] for record in finishes) == \
            list(range(len(specs)))
        # Run records never embed the full result (it lives in the cache
        # and the experiment artifact, addressed by "key" when caching).
        assert all("result" not in record for record in records)
        # The tail reader round-trips the artifact.
        events, offset = read_events(events_path)
        assert offset == events_path.stat().st_size
        assert [event.kind for event in events] == \
            [record["kind"] for record in records]

    def test_events_artifact_is_truncated_on_resubmit(self, tmp_path):
        events_path = tmp_path / "exp.events.jsonl"
        specs = [RunSpec("mmap", "seqRd")]
        tiny_session().submit(specs, events_path=events_path).result()
        first = events_path.read_text(encoding="utf-8")
        tiny_session().submit(specs, events_path=events_path).result()
        lines = events_path.read_text(encoding="utf-8").splitlines()
        # Same number of records as the first submission — not doubled.
        assert len(lines) == len(first.splitlines())

    def test_read_events_leaves_incomplete_tail_lines(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        complete = Event(kind="finish", index=0).to_line()
        path.write_text(complete + "\n" + '{"torn', encoding="utf-8")
        events, offset = read_events(path)
        assert [event.index for event in events] == [0]
        assert offset == len(complete) + 1
        # The writer finishes the line; a re-poll picks it up.
        with path.open("a", encoding="utf-8") as handle:
            handle.write('...ignored\n')
        more, _ = read_events(path, offset)
        assert more == []  # malformed completed line is skipped, not fatal


class TestCancellation:
    """Acceptance criterion: cancel() leaves the cache consistent and a
    resumed submit() completes from cache."""

    @pytest.mark.parametrize("executor", ["serial", "pool"])
    def test_cancel_mid_matrix_then_resume_from_cache(self, tmp_path,
                                                      executor, specs):
        cache_dir = tmp_path / "cache"
        expected = canonical_runs(
            ParallelExperimentRunner(TINY, workers=1).collect(specs))

        session = tiny_session(cache_dir=cache_dir, executor=executor)
        handle = session.submit(specs, name="cancelled")
        iterator = handle.iter_results()
        first = next(iterator)
        handle.cancel()
        remaining = list(iterator)
        # Stopped between runs: nothing after the in-flight run.
        assert len(remaining) <= 1
        assert handle.cancelled
        with pytest.raises(ExperimentCancelled, match="cancelled"):
            handle.result()

        # Every finished run is in the cache, bit for bit.
        finished = [first] + remaining
        assert len(list(cache_dir.glob("*.json"))) == len(finished)

        # A resumed submit completes, serving the finished runs from cache.
        resumed = tiny_session(cache_dir=cache_dir,
                               executor=executor).submit(specs)
        runs = {run.index: run for run in resumed.iter_results()}
        assert canonical_runs(resumed.result()) == expected
        for run in finished:
            assert runs[run.index].cache_hit

    def test_cancel_sharded_releases_the_claim(self, tmp_path, specs):
        spool_dir = tmp_path / "spool"
        session = tiny_session(executor="sharded", shards=2,
                               spool_dir=spool_dir,
                               cache_dir=tmp_path / "cache")
        handle = session.submit(specs, name="cancelled")
        iterator = handle.iter_results()
        next(iterator)  # shard 0 is claimed and executing
        handle.cancel()
        list(iterator)
        with pytest.raises(ExperimentCancelled):
            handle.result()
        status = ShardSpool(spool_dir).status()
        # The interrupted claim went back to pending; nothing is orphaned.
        assert not status.running
        assert len(status.pending) + len(status.done) == 2

        resumed = tiny_session(executor="sharded", shards=2,
                               spool_dir=spool_dir,
                               cache_dir=tmp_path / "cache")
        expected = canonical_runs(
            ParallelExperimentRunner(TINY, workers=1).collect(specs))
        assert canonical_runs(
            resumed.submit(specs, name="cancelled").result()) == expected

    def test_abandoned_handle_releases_its_claim(self, tmp_path, specs):
        """Dropping a handle mid-shard must not orphan the claim."""
        spool_dir = tmp_path / "spool"
        session = tiny_session(executor="sharded", shards=2,
                               spool_dir=spool_dir)
        handle = session.submit(specs, name="dropped")
        next(handle.iter_results())
        del handle  # generator close -> GeneratorExit -> release
        import gc
        gc.collect()
        assert not ShardSpool(spool_dir).status().running

    def test_cancel_before_first_pump_executes_nothing(self, tmp_path,
                                                       specs):
        cache_dir = tmp_path / "cache"
        handle = tiny_session(cache_dir=cache_dir).submit(specs)
        handle.cancel()
        assert list(handle.iter_results()) == []
        assert list(cache_dir.glob("*.json")) == []


class TestShardedRemoteProgress:
    def test_handle_tails_a_foreign_workers_progress(self, tmp_path, specs):
        """A shard claimed by another host streams in via progress records."""
        spool_dir = tmp_path / "spool"
        runner = ParallelExperimentRunner(TINY, workers=1)
        expected = canonical_runs(runner.collect(specs))
        manifests = plan_shards("remote", specs, runner.config, TINY, 2)
        spool = ShardSpool(spool_dir).prepare()
        spool.add_manifests(manifests)
        claim = spool.claim_next("foreign-host")
        assert claim is not None

        def foreign_worker():
            time_module.sleep(0.2)
            from repro.distrib import progress_on_run
            result = execute_shard(
                claim.payload, cache_dir=spool.cache_dir, workers=1,
                host="foreign-host",
                on_run=progress_on_run(spool, claim.path.name,
                                       "foreign-host",
                                       shard_index=claim.shard_index))
            spool.finish(claim, result)

        thread = threading.Thread(target=foreign_worker)
        thread.start()
        try:
            session = tiny_session(executor="sharded", shards=2,
                                   spool_dir=spool_dir)
            handle = session.submit(specs, name="remote")
            runs = list(handle.iter_results())
        finally:
            thread.join()
        assert canonical_runs(handle.result()) == expected
        remote = [run for run in runs if run.remote]
        assert remote, "the foreign shard's runs must stream in as remote"
        owners = {event.owner for event in handle.events()
                  if event.remote and event.owner}
        assert owners == {"foreign-host"}

    def test_work_spool_emits_progress_records(self, tmp_path, specs):
        runner = ParallelExperimentRunner(TINY, workers=1)
        manifests = plan_shards("progress", specs, runner.config, TINY, 2)
        spool = ShardSpool(tmp_path / "spool").prepare()
        spool.add_manifests(manifests)
        work_spool(spool, owner="worker-a", workers=1)
        total = 0
        for manifest in manifests:
            from repro.distrib import shard_file_name
            path = spool.progress_path(shard_file_name(
                manifest["experiment_id"], manifest["shard_index"]))
            events, _ = read_events(path)
            indices = {event.index for event in events}
            assert len(indices) == len(manifest["specs"])
            assert all(event.key for event in events)
            total += len(indices)
        assert total == len(specs)


class TestExecutorResolution:
    def test_names_resolve(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("pool"), PoolExecutor)
        assert isinstance(resolve_executor("sharded"), ShardedExecutor)

    def test_default_depends_on_shards(self):
        assert isinstance(resolve_executor(None), PoolExecutor)
        assert isinstance(resolve_executor(None, shards=2), ShardedExecutor)

    def test_instances_pass_through(self):
        executor = ShardedExecutor(shards=3, balance="cost")
        assert resolve_executor(executor) is executor
        assert isinstance(executor, Executor)

    def test_unknown_name_is_an_error(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("hyperspace")
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor(42)  # type: ignore[arg-type]

    def test_custom_executor_in_session(self, specs):
        """Anything implementing the protocol plugs into Session."""
        session = tiny_session(
            executor=ShardedExecutor(shards=2, balance="cost"))
        expected = canonical_runs(
            ParallelExperimentRunner(TINY, workers=1).collect(specs))
        assert canonical_runs(session.collect(specs)) == expected

    def test_cancel_token_is_callable(self):
        token = CancelToken()
        assert not token() and not token.cancelled
        token.cancel()
        assert token() and token.cancelled
