"""Tests for the serve subsystem (:mod:`repro.serve`).

The load-bearing contracts, in order of importance:

1. **Service parity** — an artifact produced through HTTP submission is
   bit-identical (as canonically serialised runs) to a local
   ``Session.submit()`` on the same specs, including after the daemon is
   killed mid-experiment and restarted (the queue crash-safety
   satellite, mirroring the spool kill/resume test).
2. **Submission dedup** — the execution key IS the run-cache key set
   (hypothesis-pinned), and two tenants submitting the same specs share
   one execution while both receive complete event streams and correct
   per-tenant artifacts.
3. **Crash-safe queue** — every transition is atomic; ``running/`` jobs
   requeue on restart; a graceful drain requeues in-flight jobs with
   their finished runs persisted in the cache.
4. **Scheduling policy** — priority strictly first, then per-tenant
   fairness, then FIFO; pending duplicates of a running execution are
   never started (they are adopted at finish).
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.runner.parallel as parallel_module
from repro.api import ServeClient, Session
from repro.config import default_config
from repro.exec import resolve_executor
from repro.runner.artifacts import experiment_to_artifact, run_cache_key
from repro.runner.events import (
    CACHE_HIT,
    JOB_FINISH,
    RUN_FINISH,
    append_event,
    job_event,
    tail_bytes,
)
from repro.runner.parallel import ParallelExperimentRunner
from repro.runner.specs import RunSpec, matrix_specs
from repro.serve import (
    CANCELLED,
    DONE,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
    ServeClient as ServeClientAlias,
    ServeClientError,
    ServeConfig,
    ServeDaemon,
    ServeUnavailable,
    execution_key,
    pick_next,
    tenant_snapshot,
    waiting_duplicates,
)
from repro.serve.client import ServeExecutor
from repro.workloads.registry import ExperimentScale, scale_system_config

TINY = ExperimentScale(capacity_scale=1 / 512, min_accesses=120,
                       max_accesses=240)
PLATFORMS = ["mmap", "hams-TE", "oracle"]
WORKLOADS = ["seqRd", "update"]

CONFIG = scale_system_config(default_config(), TINY)


def canonical_runs(experiment) -> str:
    """The artifact 'runs' array exactly as it would be written to disk."""
    return json.dumps(experiment_to_artifact("x", experiment, CONFIG)["runs"],
                      sort_keys=True)


def make_job(job_id="j000001", tenant="default", priority=0,
             specs=None, state=QUEUED, submitted=1000.0) -> Job:
    specs = specs if specs is not None else [RunSpec("mmap", "seqRd")]
    job = Job(id=job_id, tenant=tenant, name="t", priority=priority,
              specs=specs, exec_key=execution_key(specs, CONFIG, TINY),
              submitted_unix=submitted)
    job.state = state
    return job


@pytest.fixture()
def daemon(tmp_path):
    """An in-process daemon on an ephemeral port over a temp state dir."""
    instance = ServeDaemon(ServeConfig(state_dir=tmp_path / "state",
                                       fleet=2, scale=TINY)).start()
    yield instance
    instance.request_shutdown(drain=True)
    assert instance.wait(timeout=60.0)


# ---------------------------------------------------------------------------
# The persistent queue
# ---------------------------------------------------------------------------


class TestJobQueue:
    def test_submit_claim_finish_transitions(self, tmp_path):
        queue = JobQueue(tmp_path / "q").prepare()
        job = make_job(queue.next_id())
        queue.submit(job)
        assert (queue.pending_dir / f"{job.id}.json").is_file()

        queue.claim(job, owner="me:1")
        assert job.state == RUNNING and job.owner == "me:1"
        assert not (queue.pending_dir / f"{job.id}.json").exists()
        assert (queue.running_dir / f"{job.id}.json").is_file()

        queue.finish(job, DONE)
        assert not (queue.running_dir / f"{job.id}.json").exists()
        reloaded = queue.get(job.id)
        assert reloaded.state == DONE
        assert reloaded.finished_unix is not None

    def test_finish_rejects_non_terminal_state(self, tmp_path):
        queue = JobQueue(tmp_path / "q").prepare()
        job = make_job()
        queue.submit(job)
        with pytest.raises(ValueError, match="terminal"):
            queue.finish(job, RUNNING)

    def test_requeue_running_recovers_killed_daemon(self, tmp_path):
        queue = JobQueue(tmp_path / "q").prepare()
        job = make_job(queue.next_id())
        queue.submit(job)
        queue.claim(job, owner="dead:42")
        job.completed = 3  # progress the dead daemon had made

        fresh = JobQueue(tmp_path / "q")  # the restarted daemon's view
        requeued = fresh.requeue_running()
        assert [j.id for j in requeued] == [job.id]
        recovered = fresh.get(job.id)
        assert recovered.state == QUEUED
        assert recovered.owner is None
        assert recovered.completed == 0  # progress re-counts on re-execution
        assert fresh.running() == []

    def test_round_trip_preserves_specs_and_metadata(self, tmp_path):
        queue = JobQueue(tmp_path / "q").prepare()
        specs = [RunSpec("hams-TE", "seqRd",
                         config_overrides={"hams": {"mos_page_bytes": 4096}},
                         label="4KB")]
        job = make_job("j000007", tenant="alice", priority=3, specs=specs)
        queue.submit(job)
        loaded = queue.get("j000007")
        assert loaded.tenant == "alice" and loaded.priority == 3
        assert loaded.specs == specs
        assert loaded.exec_key == job.exec_key

    def test_torn_file_does_not_wedge_the_queue(self, tmp_path):
        queue = JobQueue(tmp_path / "q").prepare()
        queue.submit(make_job("j000001"))
        (queue.pending_dir / "j000002.json").write_text("{\"truncat")
        (queue.pending_dir / "foreign.json").write_text("{\"schema\": \"x\"}")
        assert [job.id for job in queue.pending()] == ["j000001"]

    def test_next_id_unique_across_states_and_restarts(self, tmp_path):
        queue = JobQueue(tmp_path / "q").prepare()
        first = make_job(queue.next_id())
        queue.submit(first)
        queue.claim(first, "me:1")
        queue.finish(first, DONE)
        second = make_job(queue.next_id())
        assert second.id == "j000002"
        queue.submit(second)
        assert JobQueue(tmp_path / "q").next_id() == "j000003"


# ---------------------------------------------------------------------------
# Scheduling policy (pure)
# ---------------------------------------------------------------------------


class TestScheduler:
    def test_priority_strictly_first(self):
        low = make_job("j000001", tenant="busy", priority=0, submitted=1.0)
        high = make_job("j000002", tenant="busy", priority=5, submitted=2.0)
        assert pick_next([low, high], [], {}) is high

    def test_fewest_in_flight_tenant_wins_within_band(self):
        # Distinct spec sets: dedup must not block what fairness ranks.
        hog_pending = make_job("j000003", tenant="hog", submitted=1.0,
                               specs=[RunSpec("mmap", "update")])
        newcomer = make_job("j000004", tenant="new", submitted=2.0,
                            specs=[RunSpec("oracle", "update")])
        running = [make_job("j000001", tenant="hog", state=RUNNING,
                            specs=[RunSpec("mmap", "seqRd")]),
                   make_job("j000002", tenant="hog", state=RUNNING,
                            specs=[RunSpec("oracle", "seqRd")])]
        assert pick_next([hog_pending, newcomer], running, {}) is newcomer

    def test_least_recently_served_round_robin(self):
        a = make_job("j000001", tenant="a", submitted=1.0)
        b = make_job("j000002", tenant="b", submitted=2.0)
        # Tenant a was served more recently than b: b's turn, despite FIFO.
        assert pick_next([a, b], [], {"a": 7, "b": 3}) is b

    def test_fifo_within_one_tenant(self):
        older = make_job("j000001", tenant="a", submitted=1.0)
        newer = make_job("j000002", tenant="a", submitted=2.0)
        assert pick_next([newer, older], [], {}) is older

    def test_running_execution_blocks_its_duplicates(self):
        specs = matrix_specs(["mmap"], ["seqRd"])
        running = make_job("j000001", specs=specs, state=RUNNING)
        duplicate = make_job("j000002", specs=specs)
        other = make_job("j000003", specs=matrix_specs(["mmap"], ["update"]),
                         submitted=9999.0)
        # The duplicate is older but not startable; the other job runs.
        assert pick_next([duplicate, other], [running], {}) is other
        assert pick_next([duplicate], [running], {}) is None
        adopted = waiting_duplicates([duplicate, other], running.exec_key)
        assert adopted == [duplicate]

    def test_tenant_snapshot_counts(self):
        pending = [make_job("j000001", tenant="a"),
                   make_job("j000002", tenant="a")]
        running = [make_job("j000003", tenant="b", state=RUNNING)]
        assert tenant_snapshot(pending, running) == {
            "a": {"queued": 2, "running": 0},
            "b": {"queued": 0, "running": 1}}


# ---------------------------------------------------------------------------
# Dedup identity == cache identity (hypothesis satellite)
# ---------------------------------------------------------------------------


spec_strategy = st.builds(
    RunSpec,
    platform=st.sampled_from(PLATFORMS),
    workload=st.sampled_from(WORKLOADS),
    label=st.one_of(st.none(), st.sampled_from(["a", "b", "swept"])),
)
spec_lists = st.lists(spec_strategy, min_size=1, max_size=5)


class TestExecutionKey:
    @settings(max_examples=50, deadline=None)
    @given(spec_lists, st.randoms())
    def test_key_is_hash_of_sorted_run_cache_keys(self, specs, rng):
        """The dedup address is exactly the run-cache key set: reordering
        specs or renaming labels — which do not change what executes or
        where it is cached — cannot change it, and it equals the pinned
        sha256-over-sorted-keys construction."""
        expected = hashlib.sha256("\n".join(
            sorted(run_cache_key(spec, CONFIG, TINY)
                   for spec in specs)).encode("ascii")).hexdigest()
        assert execution_key(specs, CONFIG, TINY) == expected

        shuffled = list(specs)
        rng.shuffle(shuffled)
        relabelled = [RunSpec(platform=spec.platform, workload=spec.workload,
                              label="renamed")
                      for spec in shuffled
                      if not spec.config_overrides
                      and not spec.platform_kwargs
                      and spec.dataset_bytes_override is None]
        assert execution_key(shuffled, CONFIG, TINY) == expected
        if len(relabelled) == len(specs):
            assert execution_key(relabelled, CONFIG, TINY) == expected

    @settings(max_examples=50, deadline=None)
    @given(spec_lists, spec_lists)
    def test_two_submissions_dedup_iff_cache_key_sets_match(self, one, two):
        keys_of = lambda specs: sorted(  # noqa: E731
            run_cache_key(spec, CONFIG, TINY) for spec in specs)
        same_execution = execution_key(one, CONFIG, TINY) == \
            execution_key(two, CONFIG, TINY)
        assert same_execution == (keys_of(one) == keys_of(two))

    def test_config_overrides_change_the_key(self):
        plain = [RunSpec("hams-TE", "seqRd")]
        swept = [RunSpec("hams-TE", "seqRd",
                         config_overrides={"hams": {"mos_page_bytes": 4096}})]
        assert execution_key(plain, CONFIG, TINY) != \
            execution_key(swept, CONFIG, TINY)


# ---------------------------------------------------------------------------
# The raw tail primitive
# ---------------------------------------------------------------------------


class TestTailBytes:
    def test_incomplete_final_line_waits(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_bytes(b'{"a":1}\n{"b":2}\n{"torn')
        data, offset = tail_bytes(path)
        assert data == b'{"a":1}\n{"b":2}\n'
        assert offset == len(data)
        path.write_bytes(b'{"a":1}\n{"b":2}\n{"torn":3}\n')
        data, offset = tail_bytes(path, offset)
        assert data == b'{"torn":3}\n'

    def test_truncated_file_resets_to_zero(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_bytes(b'{"a":1}\n' * 10)
        _data, offset = tail_bytes(path)
        path.write_bytes(b'{"fresh":1}\n')  # re-execution rewrote the file
        data, offset = tail_bytes(path, offset)
        assert data == b'{"fresh":1}\n'
        assert offset == len(data)

    def test_missing_file_reads_empty(self, tmp_path):
        assert tail_bytes(tmp_path / "absent.jsonl", 17) == (b"", 17)


# ---------------------------------------------------------------------------
# End-to-end service parity over real HTTP
# ---------------------------------------------------------------------------


class TestServiceParity:
    def test_http_artifact_bit_identical_to_local_submit(self, daemon):
        specs = matrix_specs(PLATFORMS, WORKLOADS)
        expected = canonical_runs(
            Session(TINY, workers=1, executor="serial").submit(
                specs, name="local").result())

        client = ServeClient(daemon.url, tenant="alice")
        job = client.submit(specs, name="parity")
        record = client.wait(job["id"], timeout=300.0)
        assert record["state"] == DONE
        artifact = client.result(job["id"])
        assert json.dumps(artifact["runs"], sort_keys=True) == expected
        assert artifact["meta"]["tenant"] == "alice"
        # The artifact lives in the tenant's namespace on the daemon side.
        assert (daemon.results_dir / "alice" / f"{job['id']}.json").is_file()

    def test_two_tenants_one_execution_two_full_streams(self, daemon):
        specs = matrix_specs(PLATFORMS, ["seqRd"])
        reordered = list(reversed(specs))
        alice = ServeClient(daemon.url, tenant="alice")
        bob = ServeClient(daemon.url, tenant="bob")

        first = alice.submit(specs, name="shared-a")
        second = bob.submit(reordered, name="shared-b")
        done_a = alice.wait(first["id"], timeout=300.0)
        done_b = bob.wait(second["id"], timeout=300.0)
        assert done_a["state"] == DONE and done_b["state"] == DONE

        # One execution served both submissions...
        assert daemon.counters.executions == 1
        assert done_a["exec_key"] == done_b["exec_key"]
        assert done_b["deduped_against"] == first["id"] or \
            done_a["deduped_against"] == second["id"]
        # ...and both tenants stream the complete event history: every run
        # record plus their own terminal job-finish marker.
        for client, record in ((alice, done_a), (bob, done_b)):
            events = list(client.watch(record["id"]))
            finished_keys = {event.key for event in events
                             if event.kind in (RUN_FINISH, CACHE_HIT)}
            assert len(finished_keys) == len(specs)
            assert any(event.kind == JOB_FINISH and event.job == record["id"]
                       for event in events)
        # Each artifact is folded against the tenant's own spec order.
        expected = canonical_runs(
            Session(TINY, workers=1, executor="serial").submit(
                specs, name="local").result())
        assert json.dumps(alice.result(first["id"])["runs"],
                          sort_keys=True) == expected
        reordered_expected = canonical_runs(
            Session(TINY, workers=1, executor="serial").submit(
                reordered, name="local").result())
        assert json.dumps(bob.result(second["id"])["runs"],
                          sort_keys=True) == reordered_expected

    def test_serve_executor_tier_parity(self, daemon):
        specs = matrix_specs(["mmap", "hams-TE"], ["seqRd"])
        expected = canonical_runs(
            Session(TINY, workers=1, executor="serial").submit(
                specs, name="local").result())
        session = Session(TINY, workers=1, executor=f"serve:{daemon.url}")
        handle = session.submit(specs, name="via-tier")
        streamed = list(handle.iter_results())
        assert sorted(run.index for run in streamed) == \
            list(range(len(specs)))
        assert all(run.remote for run in streamed)
        assert canonical_runs(handle.result()) == expected
        assert handle.progress().done

    def test_serve_executor_rejects_mismatched_scale(self, daemon):
        session = Session(ExperimentScale(capacity_scale=1 / 256,
                                          min_accesses=100,
                                          max_accesses=200),
                          workers=1, executor=f"serve:{daemon.url}")
        with pytest.raises(ServeClientError, match="config"):
            session.submit(matrix_specs(["mmap"], ["seqRd"]), name="bad")

    def test_submission_validation_rejects_garbage(self, daemon):
        client = ServeClient(daemon.url)
        with pytest.raises(ServeClientError, match="platform"):
            client.submit([RunSpec("not-a-platform", "seqRd")])
        with pytest.raises(ServeClientError, match="workload"):
            client.submit([RunSpec("mmap", "not-a-workload")])
        with pytest.raises(ServeClientError, match="tenant"):
            client.submit([RunSpec("mmap", "seqRd")], tenant="../escape")
        with pytest.raises(ServeClientError, match="specs"):
            client._request("POST", "/v1/jobs", {"tenant": "x", "name": "x",
                                                 "priority": 0, "specs": []})

    def test_cancel_queued_job(self, daemon):
        # Saturate the fleet so a third job stays queued long enough.
        client = ServeClient(daemon.url)
        blocker_specs = matrix_specs(PLATFORMS, WORKLOADS)
        client.submit(blocker_specs, name="blocker-1")
        client.submit(matrix_specs(PLATFORMS, ["update"]), name="blocker-2")
        victim = client.submit(matrix_specs(["oracle"], ["seqRd"]),
                               name="victim")
        try:
            record = client.cancel(victim["id"])
        except ServeClientError as error:
            assert error.status == 409  # raced: terminal before the cancel
            return
        assert record["state"] in (CANCELLED, RUNNING, DONE)
        if record["state"] == CANCELLED:
            final = client.job(victim["id"])
            assert final["state"] == CANCELLED

    def test_status_and_discovery(self, daemon, tmp_path):
        status = ServeClient(daemon.url).status()
        assert status["schema"] == "repro.serve-status/1"
        assert status["queue"]["failed"] == 0
        assert 0.0 <= status["runs"]["cache_hit_rate"] <= 1.0
        via_record = ServeClient.from_state_dir(daemon.state_dir)
        assert via_record.url == daemon.url
        with pytest.raises(ServeUnavailable):
            ServeClient.from_state_dir(tmp_path / "nowhere")

    def test_second_daemon_on_same_state_dir_refuses(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        # A server.json owned by another *live* process (pid 1 always is).
        (state / "server.json").write_text(json.dumps(
            {"schema": "repro.serve/1", "url": "http://127.0.0.1:1",
             "pid": 1, "state_dir": str(state)}))
        with pytest.raises(RuntimeError, match="already owns"):
            ServeDaemon(ServeConfig(state_dir=state, scale=TINY)).start()


# ---------------------------------------------------------------------------
# Drain and crash safety
# ---------------------------------------------------------------------------


class TestDrainAndResume:
    def test_drain_requeues_in_flight_job_and_restart_resumes(
            self, tmp_path, monkeypatch):
        specs = matrix_specs(PLATFORMS, ["seqRd"])
        expected = canonical_runs(
            Session(TINY, workers=1, executor="serial").submit(
                specs, name="local").result())

        real = parallel_module.execute_spec
        first_running = threading.Event()
        proceed = threading.Event()
        calls = {"n": 0}

        def gated(spec, config, scale, trace_cache):
            calls["n"] += 1
            result = real(spec, config, scale, trace_cache)
            if calls["n"] == 1:
                first_running.set()
                assert proceed.wait(timeout=60.0)
            return result

        monkeypatch.setattr(parallel_module, "execute_spec", gated)
        daemon = ServeDaemon(ServeConfig(state_dir=tmp_path / "state",
                                         fleet=1, scale=TINY)).start()
        client = ServeClient(daemon.url)
        job = client.submit(specs, name="drained")
        assert first_running.wait(timeout=60.0)
        # Drain lands while run 1 holds the gate: the run must finish and
        # persist, then the job returns to pending for the next daemon.
        daemon.request_shutdown(drain=True)
        proceed.set()
        assert daemon.wait(timeout=60.0)
        monkeypatch.setattr(parallel_module, "execute_spec", real)

        queue = JobQueue(tmp_path / "state" / "queue")
        assert [j.id for j in queue.pending()] == [job["id"]]
        assert queue.running() == []

        restarted = ServeDaemon(ServeConfig(state_dir=tmp_path / "state",
                                            fleet=1, scale=TINY)).start()
        try:
            client = ServeClient(restarted.url)
            record = client.wait(job["id"], timeout=300.0)
            assert record["state"] == DONE
            # The drained run resolved from the cache instead of re-running.
            assert record["cache_hits"] >= 1
            assert json.dumps(client.result(job["id"])["runs"],
                              sort_keys=True) == expected
        finally:
            restarted.request_shutdown(drain=True)
            assert restarted.wait(timeout=60.0)

    def test_kill_daemon_mid_experiment_restart_bit_identical(
            self, tmp_path):
        """The crash-safety satellite: SIGKILL a real daemon subprocess
        mid-experiment, restart it over the same state directory, and the
        resumed job's artifact is bit-identical to an uninterrupted local
        run (mirrors the spool kill/resume test one layer up)."""
        specs = matrix_specs(PLATFORMS, WORKLOADS)
        expected = canonical_runs(
            Session(TINY, workers=1, executor="serial").submit(
                specs, name="local").result())
        state = tmp_path / "state"

        first = _spawn_daemon(state, tmp_path / "daemon1.log")
        try:
            client = ServeClient.from_state_dir(state)
            job = client.submit(specs, name="interrupted")
            deadline = time.monotonic() + 300.0
            while time.monotonic() < deadline:
                if client.job(job["id"])["completed"] >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("daemon made no progress to interrupt")
        finally:
            first.kill()  # SIGKILL: no drain, no cleanup
            first.wait(timeout=30.0)

        # The kill left the claim behind; the queue recovers it on restart.
        queue = JobQueue(state / "queue")
        assert [j.id for j in queue.running()] == [job["id"]]

        second = _spawn_daemon(state, tmp_path / "daemon2.log")
        try:
            client = ServeClient.from_state_dir(state)
            record = client.wait(job["id"], timeout=300.0)
            assert record["state"] == DONE
            # Resumed, not recomputed: the interrupted runs came from cache.
            assert record["cache_hits"] >= 2
            artifact = client.result(job["id"])
            assert json.dumps(artifact["runs"], sort_keys=True) == expected
            client.shutdown()
            second.wait(timeout=60.0)
        finally:
            if second.poll() is None:
                second.kill()
                second.wait(timeout=30.0)


def _spawn_daemon(state, log_path) -> subprocess.Popen:
    """Start a real `repro serve start` subprocess and wait for its record."""
    env = dict(os.environ)
    src = str((_repo_root() / "src").resolve())
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    with log_path.open("wb") as log:
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "start",
             "--state", str(state),
             "--capacity-scale", str(TINY.capacity_scale),
             "--min-accesses", str(TINY.min_accesses),
             "--max-accesses", str(TINY.max_accesses)],
            stdout=log, stderr=subprocess.STDOUT, env=env)
    record = state / "server.json"
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if record.is_file():
            try:
                payload = json.loads(record.read_text(encoding="utf-8"))
            except json.JSONDecodeError:
                payload = {}
            if payload.get("pid") == process.pid:
                return process
        if process.poll() is not None:
            raise RuntimeError(
                f"daemon died at startup: {log_path.read_text()}")
        time.sleep(0.05)
    process.kill()
    raise RuntimeError(f"daemon never published {record}")


def _repo_root():
    from pathlib import Path
    return Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# Wiring
# ---------------------------------------------------------------------------


class TestWiring:
    def test_resolve_executor_serve_prefix(self):
        executor = resolve_executor("serve:http://127.0.0.1:1")
        assert isinstance(executor, ServeExecutor)
        assert executor.client.url == "http://127.0.0.1:1"
        with pytest.raises(ValueError, match="URL"):
            resolve_executor("serve:")
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("telnet")

    def test_facade_exports(self):
        import repro
        assert repro.ServeClient is ServeClient
        assert ServeClientAlias is ServeClient

    def test_job_events_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_event(path, job_event(JOB_FINISH, "j000001", "alice",
                                     state=DONE, key="k" * 64, total=6))
        data, _offset = tail_bytes(path)
        record = json.loads(data)
        assert record["schema"] == "repro.events/1"
        assert record["kind"] == JOB_FINISH
        assert record["job"] == "j000001"
        assert record["tenant"] == "alice"
        assert record["state"] == DONE

    def test_cli_serve_help_registered(self):
        from repro.runner.cli import build_parser
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["serve"])  # missing sub-verb => argparse error
        assert excinfo.value.code == 2
        args = parser.parse_args(["serve", "status", "--url", "http://x:1"])
        assert args.serve_command == "status"

    def test_events_endpoint_offset_clamp(self, daemon):
        client = ServeClient(daemon.url)
        job = client.submit(matrix_specs(["mmap"], ["seqRd"]), name="clamp")
        client.wait(job["id"], timeout=300.0)
        # An offset far past EOF must clamp to zero, not hang or error.
        path = (f"{daemon.url}/v1/jobs/{job['id']}/events"
                f"?offset=999999&wait=0")
        with urllib.request.urlopen(path, timeout=30.0) as response:
            assert response.headers["X-Repro-Events-Offset"] == "0"
            assert b"submitted" in response.read()


def test_unreachable_daemon_raises_serve_unavailable():
    client = ServeClient("http://127.0.0.1:9", timeout=0.5)
    with pytest.raises(ServeUnavailable):
        client.status()
