"""SSD-internal DRAM buffer, host interface layer, and flash interface layer."""

import pytest

from repro.config import FlashGeometry, FlashTiming
from repro.flash.channel import ChannelScheduler
from repro.flash.dram_buffer import InternalDRAMBuffer
from repro.flash.fil import FlashInterfaceLayer
from repro.flash.ftl import PhysicalAddress
from repro.flash.hil import HostInterfaceLayer
from repro.flash.znand import ZNANDArray
from repro.units import KB, mb_per_s


class TestInternalDRAMBuffer:
    def test_read_miss_then_fill_then_hit(self):
        buffer = InternalDRAMBuffer(KB(64), KB(4))
        assert buffer.read(1) is False
        buffer.fill(1)
        assert buffer.read(1) is True
        assert buffer.stats.read_hits == 1
        assert buffer.stats.read_misses == 1

    def test_write_marks_dirty(self):
        buffer = InternalDRAMBuffer(KB(64), KB(4))
        buffer.write(2)
        assert buffer.dirty_pages == 1

    def test_lru_eviction_returns_victim(self):
        buffer = InternalDRAMBuffer(KB(8), KB(4))  # two pages
        buffer.write(1)
        buffer.write(2)
        hit, evicted = buffer.write(3)
        assert hit is False
        assert evicted == (1, True)

    def test_clean_fill_eviction_is_not_dirty(self):
        buffer = InternalDRAMBuffer(KB(8), KB(4))
        buffer.fill(1)
        buffer.fill(2)
        evicted = buffer.fill(3)
        assert evicted == (1, False)

    def test_disabled_buffer_never_hits(self):
        buffer = InternalDRAMBuffer(KB(64), KB(4), enabled=False)
        buffer.write(1)
        assert buffer.read(1) is False
        assert len(buffer) == 0

    def test_mapping_table_fraction_reduces_capacity(self):
        full = InternalDRAMBuffer(KB(16), KB(4))
        reduced = InternalDRAMBuffer(KB(16), KB(4), mapping_table_fraction=0.5)
        assert reduced.capacity_pages < full.capacity_pages

    def test_flush_all_cleans_dirty_pages(self):
        buffer = InternalDRAMBuffer(KB(64), KB(4))
        buffer.write(1)
        buffer.write(2)
        flushed = buffer.flush_all()
        assert sorted(flushed) == [1, 2]
        assert buffer.dirty_pages == 0

    def test_invalidate(self):
        buffer = InternalDRAMBuffer(KB(64), KB(4))
        buffer.fill(7)
        buffer.invalidate(7)
        assert 7 not in buffer

    def test_hit_rate(self):
        buffer = InternalDRAMBuffer(KB(64), KB(4))
        buffer.write(1)       # miss
        buffer.read(1)        # hit
        assert buffer.stats.hit_rate == pytest.approx(0.5)


class TestHostInterfaceLayer:
    def test_aligned_request_splits_into_pages(self):
        hil = HostInterfaceLayer(KB(4), firmware_latency_ns=800)
        pieces = hil.split(0, KB(16), is_write=False)
        assert len(pieces) == 4
        assert [piece.lpn for piece in pieces] == [0, 1, 2, 3]
        assert all(piece.size_bytes == KB(4) for piece in pieces)

    def test_unaligned_request_has_partial_edges(self):
        hil = HostInterfaceLayer(KB(4), firmware_latency_ns=800)
        pieces = hil.split(KB(2), KB(4), is_write=True)
        assert len(pieces) == 2
        assert pieces[0].size_bytes == KB(2)
        assert pieces[1].size_bytes == KB(2)
        assert all(piece.is_write for piece in pieces)

    def test_sub_page_request(self):
        hil = HostInterfaceLayer(KB(4), firmware_latency_ns=800)
        pieces = hil.split(100, 64, is_write=False)
        assert len(pieces) == 1
        assert pieces[0].lpn == 0
        assert pieces[0].size_bytes == 64

    def test_parse_latency_grows_with_fanout(self):
        hil = HostInterfaceLayer(KB(4), firmware_latency_ns=800)
        assert hil.parse_latency(8) > hil.parse_latency(1)

    def test_invalid_requests_rejected(self):
        hil = HostInterfaceLayer(KB(4), firmware_latency_ns=800)
        with pytest.raises(ValueError):
            hil.split(-1, 10, False)
        with pytest.raises(ValueError):
            hil.split(0, 0, False)
        with pytest.raises(ValueError):
            hil.parse_latency(0)


def _fil(split: bool) -> FlashInterfaceLayer:
    geometry = FlashGeometry(channels=4, packages_per_channel=1,
                             dies_per_package=1, planes_per_die=1,
                             blocks_per_plane=8, pages_per_block=8)
    array = ZNANDArray(geometry, FlashTiming.znand())
    channels = ChannelScheduler(geometry, mb_per_s(800))
    return FlashInterfaceLayer(array, channels, KB(4), split_channels=split)


class TestFlashInterfaceLayer:
    def test_read_includes_array_and_transfer(self):
        fil = _fil(split=False)
        address = PhysicalAddress(0, 0, 0, 0, 0, 0)
        access = fil.read_page(address, 0.0)
        assert access.array_time_ns == pytest.approx(3000.0)
        assert access.transfer_time_ns > 0
        assert access.finish_ns == pytest.approx(
            access.array_time_ns + fil.channels.transfer_time(KB(4)))

    def test_split_halves_per_request_transfer(self):
        whole = _fil(split=False)
        split = _fil(split=True)
        address = PhysicalAddress(0, 0, 0, 0, 0, 0)
        whole_access = whole.read_page(address, 0.0)
        split_access = split.read_page(address, 0.0)
        assert split_access.transfer_time_ns == pytest.approx(
            whole_access.transfer_time_ns / 2)
        assert split_access.finish_ns < whole_access.finish_ns

    def test_write_pays_program_time(self):
        fil = _fil(split=False)
        address = PhysicalAddress(1, 0, 0, 0, 0, 0)
        access = fil.write_page(address, 0.0)
        assert access.array_time_ns == pytest.approx(100_000.0)
        assert access.finish_ns > 100_000.0

    def test_erase_has_no_transfer(self):
        fil = _fil(split=False)
        address = PhysicalAddress(1, 0, 0, 0, 0, 0)
        access = fil.erase_block(address, 0.0)
        assert access.transfer_time_ns == 0.0
        assert access.array_time_ns == pytest.approx(1_000_000.0)

    def test_operation_counters(self):
        fil = _fil(split=True)
        address = PhysicalAddress(0, 0, 0, 0, 0, 0)
        fil.read_page(address, 0.0)
        fil.write_page(address, 0.0)
        fil.erase_block(address, 0.0)
        stats = fil.statistics()
        assert stats == {"page_reads": 1, "page_programs": 1, "block_erases": 1}
