"""Analysis helpers, the experiment runner, and end-to-end integration checks."""

import pytest

from repro.analysis.breakdown import (
    average_breakdown,
    execution_breakdown_table,
    memory_delay_table,
    normalised_energy_table,
)
from repro.analysis.experiments import ExperimentRunner
from repro.analysis.reporting import format_series, format_table, series_to_rows
from repro.workloads.registry import ExperimentScale

SCALE = ExperimentScale(capacity_scale=1 / 512, min_accesses=200,
                        max_accesses=400)


@pytest.fixture(scope="module")
def small_experiment():
    runner = ExperimentRunner(SCALE)
    return runner.run_matrix(["mmap", "hams-LE", "hams-TE", "oracle"],
                             ["seqRd", "rndSel"])


class TestReporting:
    def test_format_table_contains_rows_and_columns(self):
        text = format_table({"a": {"x": 1.0, "y": 2.0}, "b": {"x": 3.0}},
                            title="demo")
        assert "demo" in text
        assert "a" in text and "b" in text
        assert "1.000" in text
        assert "-" in text  # missing value placeholder

    def test_format_table_empty(self):
        assert "(empty)" in format_table({})

    def test_series_to_rows_transposes(self):
        rows = series_to_rows({"s1": {"x1": 1.0}, "s2": {"x1": 2.0}})
        assert rows == {"x1": {"s1": 1.0, "s2": 2.0}}

    def test_format_series(self):
        text = format_series({"s1": {"1": 10.0, "2": 20.0}})
        assert "s1" in text and "10.000" in text


class TestExperimentRunner:
    def test_traces_are_memoised(self):
        runner = ExperimentRunner(SCALE)
        assert runner.trace("seqRd") is runner.trace("seqRd")

    def test_run_matrix_covers_all_combinations(self, small_experiment):
        assert len(small_experiment.results) == 8
        assert set(small_experiment.platforms()) == {"mmap", "hams-LE",
                                                     "hams-TE", "oracle"}
        assert small_experiment.workloads() == ["seqRd", "rndSel"]

    def test_throughput_series(self, small_experiment):
        series = small_experiment.throughput_series("hams-TE")
        assert set(series) == {"seqRd", "rndSel"}
        assert all(value > 0 for value in series.values())

    def test_speedup_over_baseline(self, small_experiment):
        speedups = small_experiment.speedup_over("hams-TE", "mmap")
        assert speedups["seqRd"] > 1.0

    def test_mean_speedup_and_energy_ratio(self, small_experiment):
        assert small_experiment.mean_speedup("oracle", "mmap") > 1.0
        assert small_experiment.energy_ratio("hams-TE", "mmap") < 1.0

    def test_headline_claim_shape(self, small_experiment):
        """HAMS outperforms the software MMF design and saves energy."""
        assert small_experiment.mean_speedup("hams-TE", "mmap") > 1.2
        assert small_experiment.mean_speedup("hams-LE", "mmap") > 1.1


class TestBreakdownTables:
    def test_execution_breakdown_normalised_to_baseline(self, small_experiment):
        results = {name: small_experiment.get(name, "seqRd")
                   for name in ("mmap", "hams-TE")}
        table = execution_breakdown_table(results, baseline="mmap")
        assert table["mmap"]["total"] == pytest.approx(1.0)
        assert table["hams-TE"]["total"] < 1.0
        assert table["hams-TE"]["os"] == pytest.approx(0.0)

    def test_execution_breakdown_requires_baseline(self, small_experiment):
        with pytest.raises(ValueError):
            execution_breakdown_table(
                {"hams-TE": small_experiment.get("hams-TE", "seqRd")},
                baseline="mmap")

    def test_memory_delay_table_self_normalised(self, small_experiment):
        results = {name: small_experiment.get(name, "seqRd")
                   for name in ("hams-LE", "hams-TE")}
        table = memory_delay_table(results)
        for row in table.values():
            assert row["total"] == pytest.approx(1.0) or row["total"] == 0.0

    def test_memory_delay_table_with_baseline(self, small_experiment):
        results = {name: small_experiment.get(name, "seqRd")
                   for name in ("hams-LE", "hams-TE")}
        table = memory_delay_table(results, baseline="hams-LE")
        assert table["hams-LE"]["total"] == pytest.approx(1.0)

    def test_energy_table(self, small_experiment):
        results = {name: small_experiment.get(name, "seqRd")
                   for name in ("mmap", "hams-TE", "oracle")}
        table = normalised_energy_table(results, baseline="mmap")
        assert table["mmap"]["total"] == pytest.approx(1.0)
        assert table["hams-TE"]["total"] < 1.0

    def test_average_breakdown(self):
        tables = [
            {"p": {"app": 0.5, "os": 0.5}},
            {"p": {"app": 1.0, "os": 0.0}},
        ]
        averaged = average_breakdown(tables)
        assert averaged["p"]["app"] == pytest.approx(0.75)
        assert averaged["p"]["os"] == pytest.approx(0.25)


class TestPaperShapes:
    """End-to-end checks of the qualitative results the paper reports."""

    def test_memory_delay_dma_share_larger_for_loose_hams(self, small_experiment):
        loose = small_experiment.get("hams-LE", "seqRd").memory_delay
        tight = small_experiment.get("hams-TE", "seqRd").memory_delay
        loose_dma = loose["dma_ns"] / loose["total_ns"]
        tight_dma = tight["dma_ns"] / tight["total_ns"]
        assert loose_dma > tight_dma

    def test_hams_energy_below_mmap_on_microbench(self, small_experiment):
        mmap_energy = small_experiment.get("mmap", "seqRd").energy.total_nj
        hams_energy = small_experiment.get("hams-TE", "seqRd").energy.total_nj
        assert hams_energy < mmap_energy

    def test_oracle_has_no_storage_time(self, small_experiment):
        oracle = small_experiment.get("oracle", "seqRd")
        assert oracle.ssd_ns == 0.0
        assert oracle.os_ns == 0.0
