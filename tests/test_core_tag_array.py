"""MoS tag-array: direct-mapped lookup, busy/dirty bits, Figure 11 behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tag_array import MoSTagArray
from repro.units import KB, MB


def small_array(entries: int = 8) -> MoSTagArray:
    return MoSTagArray(cacheable_bytes=entries * KB(128),
                       mos_page_bytes=KB(128))


class TestConstruction:
    def test_entry_count(self):
        array = MoSTagArray(MB(1), KB(128))
        assert array.entries_count == 8

    def test_too_small_cache_rejected(self):
        with pytest.raises(ValueError):
            MoSTagArray(KB(64), KB(128))

    def test_invalid_page_size_rejected(self):
        with pytest.raises(ValueError):
            MoSTagArray(MB(1), 0)


class TestAddressing:
    def test_index_and_tag_roundtrip(self):
        array = small_array(8)
        for page in (0, 5, 8, 13, 100):
            index = array.index_of(page)
            tag = array.tag_of(page)
            assert array.page_from(index, tag) == page

    def test_conflicting_pages_share_index(self):
        array = small_array(8)
        assert array.index_of(3) == array.index_of(11) == array.index_of(19)


class TestLookupAndInstall:
    def test_cold_lookup_misses(self):
        array = small_array()
        lookup = array.lookup(3)
        assert not lookup.hit
        assert lookup.victim_tag is None
        assert not lookup.needs_eviction

    def test_install_then_hit(self):
        array = small_array()
        array.install(3)
        assert array.lookup(3).hit
        assert array.hit_rate == pytest.approx(1.0)

    def test_conflict_miss_reports_victim(self):
        array = small_array(8)
        array.install(3, dirty=True)
        lookup = array.lookup(11)
        assert not lookup.hit
        assert lookup.victim_tag == array.tag_of(3)
        assert lookup.victim_dirty
        assert lookup.needs_eviction

    def test_clean_victim_needs_no_eviction(self):
        array = small_array(8)
        array.install(3, dirty=False)
        lookup = array.lookup(11)
        assert not lookup.hit
        assert not lookup.needs_eviction

    def test_negative_page_rejected(self):
        with pytest.raises(ValueError):
            small_array().lookup(-1)

    def test_lookup_counters(self):
        array = small_array()
        array.lookup(0)
        array.install(0)
        array.lookup(0)
        assert array.lookups == 2
        assert array.hits == 1
        assert array.misses == 1


class TestStateBits:
    def test_mark_dirty(self):
        array = small_array()
        array.install(2, dirty=False)
        array.mark_dirty(2)
        assert array.entry(array.index_of(2)).dirty
        assert array.dirty_count() == 1

    def test_mark_dirty_requires_residency(self):
        array = small_array()
        with pytest.raises(ValueError):
            array.mark_dirty(2)

    def test_busy_bit(self):
        array = small_array()
        array.set_busy(3, True)
        assert array.entry(3).busy
        assert array.busy_count() == 1
        array.set_busy(3, False)
        assert array.busy_count() == 0

    def test_install_clears_busy(self):
        array = small_array()
        array.set_busy(array.index_of(5), True)
        array.install(5)
        assert not array.entry(array.index_of(5)).busy

    def test_invalidate(self):
        array = small_array()
        array.install(4)
        array.invalidate(4)
        assert not array.lookup(4).hit

    def test_invalidate_wrong_page_is_noop(self):
        array = small_array(8)
        array.install(4)
        array.invalidate(12)  # same index, different tag
        assert array.lookup(4).hit

    def test_entry_index_bounds(self):
        with pytest.raises(ValueError):
            small_array(4).entry(4)


class TestResidency:
    def test_resident_pages(self):
        array = small_array(8)
        array.install(1)
        array.install(10)
        assert sorted(array.resident_pages()) == [1, 10]

    def test_statistics(self):
        array = small_array()
        array.install(0, dirty=True)
        array.lookup(0)
        stats = array.statistics()
        assert stats["hit_rate"] == 1.0
        assert stats["dirty_entries"] == 1


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63),
                    min_size=1, max_size=200))
    def test_direct_mapped_invariant(self, pages):
        """After any access sequence, each index holds at most the last
        installed page that maps to it, and a lookup of that page hits."""
        array = small_array(8)
        last_at_index = {}
        for page in pages:
            lookup = array.lookup(page)
            if not lookup.hit:
                array.install(page)
            last_at_index[array.index_of(page)] = page
        for index, page in last_at_index.items():
            assert array.lookup(page).hit
            entry = array.entry(index)
            assert array.page_from(index, entry.tag) == page
