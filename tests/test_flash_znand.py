"""Z-NAND array: die occupancy, operation timing, parallelism."""

import pytest

from repro.config import FlashGeometry, FlashTiming
from repro.flash.znand import FlashOperation, ZNANDArray


def small_array() -> ZNANDArray:
    geometry = FlashGeometry(channels=2, packages_per_channel=1,
                             dies_per_package=2, planes_per_die=1,
                             blocks_per_plane=4, pages_per_block=8)
    return ZNANDArray(geometry, FlashTiming.znand())


class TestOperationTiming:
    def test_read_time(self):
        array = small_array()
        assert array.operation_time_ns(FlashOperation.READ) == 3000.0

    def test_program_time(self):
        array = small_array()
        assert array.operation_time_ns(FlashOperation.PROGRAM) == 100_000.0

    def test_erase_time(self):
        array = small_array()
        assert array.operation_time_ns(FlashOperation.ERASE) == 1_000_000.0


class TestDieOccupancy:
    def test_idle_die_starts_immediately(self):
        array = small_array()
        start, finish = array.issue(0, 0, 0, FlashOperation.READ, 500.0)
        assert start == 500.0
        assert finish == 3500.0

    def test_same_die_serialises(self):
        array = small_array()
        array.issue(0, 0, 0, FlashOperation.READ, 0.0)
        start, finish = array.issue(0, 0, 0, FlashOperation.READ, 0.0)
        assert start == 3000.0
        assert finish == 6000.0

    def test_different_dies_overlap(self):
        array = small_array()
        _, finish_a = array.issue(0, 0, 0, FlashOperation.READ, 0.0)
        start_b, finish_b = array.issue(0, 0, 1, FlashOperation.READ, 0.0)
        assert start_b == 0.0
        assert finish_a == finish_b == 3000.0

    def test_operation_counters(self):
        array = small_array()
        array.issue(0, 0, 0, FlashOperation.READ, 0.0)
        array.issue(0, 0, 0, FlashOperation.PROGRAM, 0.0)
        array.issue(0, 0, 0, FlashOperation.ERASE, 0.0)
        state = array.die_state(0, 0, 0)
        assert state.reads == 1
        assert state.programs == 1
        assert state.erases == 1
        assert state.operations_total() == 3

    def test_invalid_die_address(self):
        array = small_array()
        with pytest.raises(ValueError):
            array.die_state(9, 0, 0)


class TestSelection:
    def test_earliest_available_prefers_idle_die(self):
        array = small_array()
        array.issue(0, 0, 0, FlashOperation.PROGRAM, 0.0)
        channel, package, die = array.earliest_available(0.0)
        assert (channel, package, die) != (0, 0, 0)

    def test_dies_on_channel(self):
        array = small_array()
        dies = array.dies_on_channel(0)
        assert len(dies) == 2
        assert all(die.channel == 0 for die in dies)

    def test_total_die_count(self):
        assert len(small_array().dies()) == 4


class TestSummaryAndReset:
    def test_utilisation_summary(self):
        array = small_array()
        array.issue(0, 0, 0, FlashOperation.READ, 0.0)
        array.issue(1, 0, 1, FlashOperation.PROGRAM, 0.0)
        summary = array.utilisation_summary()
        assert summary["reads"] == 1
        assert summary["programs"] == 1
        assert summary["busiest_die_until_ns"] == 100_000.0

    def test_reset(self):
        array = small_array()
        array.issue(0, 0, 0, FlashOperation.READ, 0.0)
        array.reset()
        assert array.utilisation_summary()["reads"] == 0
        assert array.die_state(0, 0, 0).busy_until_ns == 0.0
