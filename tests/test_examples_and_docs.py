"""Smoke tests for the example applications and the repository documentation.

The examples are part of the public deliverable; these tests make sure they
stay importable and that the fast ones run end-to-end, and that the
documentation files keep covering the pieces they promise.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"
BENCHMARKS = REPO_ROOT / "benchmarks"


def _load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_all_examples_exist(self):
        names = {path.name for path in EXAMPLES.glob("*.py")}
        assert {"quickstart.py", "persistent_memory_expansion.py",
                "sqlite_workload_study.py", "page_size_sweep.py"} <= names

    def test_examples_define_main(self):
        for path in sorted(EXAMPLES.glob("*.py")):
            module = _load_module(path)
            assert callable(getattr(module, "main", None)), path.name

    def test_persistent_memory_expansion_runs(self, capsys):
        module = _load_module(EXAMPLES / "persistent_memory_expansion.py")
        module.main()
        output = capsys.readouterr().out
        assert "recovery report" in output
        assert "consistent                 : True" in output

    def test_examples_have_docstrings(self):
        for path in sorted(EXAMPLES.glob("*.py")):
            text = path.read_text(encoding="utf-8")
            assert text.lstrip().startswith(('#!/usr/bin/env python3', '"""')), \
                path.name
            assert '"""' in text


class TestBenchmarksLayout:
    def test_one_bench_file_per_figure(self):
        names = {path.name for path in BENCHMARKS.glob("bench_fig*.py")}
        expected = {
            "bench_fig05_ull_characterization.py",
            "bench_fig06_mmf_performance.py",
            "bench_fig07_software_overhead.py",
            "bench_fig10_dma_overhead.py",
            "bench_fig16_application_performance.py",
            "bench_fig17_execution_breakdown.py",
            "bench_fig18_memory_delay.py",
            "bench_fig19_energy.py",
            "bench_fig20_sensitivity.py",
        }
        assert expected <= names


class TestDocumentation:
    def test_design_covers_every_experiment(self):
        text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for token in ("Fig. 5", "Fig. 16", "Fig. 17", "Fig. 18", "Fig. 19",
                      "Fig. 20", "Table III", "bench_fig16"):
            assert token in text, token

    def test_experiments_covers_headline_claim(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for token in ("+97", "+119", "−41", "−45", "Fig. 10a", "Fig. 20b"):
            assert token in text, token

    def test_readme_quickstart_mentions_public_api(self):
        text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for token in ("ExperimentRunner", "hams-TE", "pytest benchmarks/",
                      "examples/quickstart.py"):
            assert token in text, token


class TestPublicAPI:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2
