"""Property tests for the merge algebra the shard coordinator relies on.

The distributed tier is only correct if folding shards is insensitive to
how the work was partitioned and in which order the partial aggregates are
combined.  These tests state that as hypothesis properties over
``Counter.merge``, ``LatencyStat.merge``, ``Histogram.merge``,
``StatRegistry.merge`` and ``ExperimentResult.merge``:

* **splitting invariance** — merging the aggregates of any partition of a
  sample stream equals aggregating the whole stream at once;
* **associativity / order-insensitivity** — any merge tree over the same
  shards yields the same aggregate.

Counts, bucket counts, min and max are exact (integer or order-free
arithmetic).  Sums and the Welford mean/M2 are floating point, where
reassociation legitimately perturbs the last ulps, so those compare with a
tight relative tolerance rather than bit equality.  ``ExperimentResult``
holds runs by key without arithmetic, so its merges are exact.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import ExperimentResult
from repro.energy.accounting import EnergyBreakdown
from repro.platforms.base import RunResult
from repro.sim.stats import Counter, Histogram, LatencyStat, StatRegistry
from repro.workloads.registry import ExperimentScale

SCALE = ExperimentScale()

#: Latency-like samples: non-negative, wide dynamic range, no NaN/inf.
samples = st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                    allow_infinity=False)
sample_lists = st.lists(samples, max_size=40)

#: A partition of one stream into shard-sized pieces.
sharded_samples = st.lists(sample_lists, min_size=1, max_size=5)


def close(left: float, right: float, tolerance: float = 1e-9) -> bool:
    return math.isclose(left, right, rel_tol=tolerance, abs_tol=1e-6)


# ---------------------------------------------------------------------------
# Counter
# ---------------------------------------------------------------------------


def counter_of(values) -> Counter:
    counter = Counter("c")
    for value in values:
        counter.add(value)
    return counter


@settings(max_examples=50, deadline=None)
@given(sharded_samples)
def test_counter_split_invariance(shards):
    whole = counter_of([value for shard in shards for value in shard])
    merged = Counter("c")
    for shard in shards:
        merged.merge(counter_of(shard))
    assert close(merged.value, whole.value)


@settings(max_examples=50, deadline=None)
@given(sample_lists, sample_lists, sample_lists)
def test_counter_merge_associative(a, b, c):
    left = counter_of(a)
    left.merge(counter_of(b))
    left.merge(counter_of(c))
    bc = counter_of(b)
    bc.merge(counter_of(c))
    right = counter_of(a)
    right.merge(bc)
    assert close(left.value, right.value)


# ---------------------------------------------------------------------------
# LatencyStat (parallel Welford merge)
# ---------------------------------------------------------------------------


def latency_of(values) -> LatencyStat:
    stat = LatencyStat("lat")
    for value in values:
        stat.record(value)
    return stat


def assert_latency_equal(left: LatencyStat, right: LatencyStat) -> None:
    assert left.count == right.count
    if left.count == 0:
        return
    assert left.min == right.min
    assert left.max == right.max
    assert close(left.total, right.total)
    assert close(left.mean, right.mean)
    # M2 is a sum of squared deviations: scale the tolerance to it rather
    # than comparing variances directly, which amplifies cancellation noise.
    assert close(left._m2, right._m2, tolerance=1e-6)


@settings(max_examples=50, deadline=None)
@given(sharded_samples)
def test_latency_split_invariance(shards):
    whole = latency_of([value for shard in shards for value in shard])
    merged = LatencyStat("lat")
    for shard in shards:
        merged.merge(latency_of(shard))
    assert_latency_equal(merged, whole)


@settings(max_examples=50, deadline=None)
@given(sample_lists, sample_lists, sample_lists)
def test_latency_merge_associative(a, b, c):
    left = latency_of(a)
    left.merge(latency_of(b))
    left.merge(latency_of(c))
    bc = latency_of(b)
    bc.merge(latency_of(c))
    right = latency_of(a)
    right.merge(bc)
    assert_latency_equal(left, right)


@settings(max_examples=30, deadline=None)
@given(st.permutations(list(range(4))), sharded_samples)
def test_latency_shard_order_insensitive(order, shards):
    shards = (shards * 4)[:4]
    forward = LatencyStat("lat")
    for shard in shards:
        forward.merge(latency_of(shard))
    permuted = LatencyStat("lat")
    for index in order:
        permuted.merge(latency_of(shards[index]))
    assert_latency_equal(forward, permuted)


# ---------------------------------------------------------------------------
# Histogram (integer buckets: everything is exact)
# ---------------------------------------------------------------------------

BOUNDS = [10.0, 100.0, 1000.0]


def histogram_of(values) -> Histogram:
    histogram = Histogram("h", BOUNDS)
    for value in values:
        histogram.record(value)
    return histogram


@settings(max_examples=50, deadline=None)
@given(sharded_samples)
def test_histogram_split_invariance_is_exact(shards):
    whole = histogram_of([value for shard in shards for value in shard])
    merged = Histogram("h", BOUNDS)
    for shard in shards:
        merged.merge(histogram_of(shard))
    assert merged.counts == whole.counts
    assert merged.total_samples == whole.total_samples


@settings(max_examples=50, deadline=None)
@given(sample_lists, sample_lists, sample_lists)
def test_histogram_merge_associative_and_commutative(a, b, c):
    left = histogram_of(a)
    left.merge(histogram_of(b))
    left.merge(histogram_of(c))
    bc = histogram_of(b)
    bc.merge(histogram_of(c))
    right = histogram_of(a)
    right.merge(bc)
    assert left.counts == right.counts
    swapped = histogram_of(c)
    swapped.merge(histogram_of(a))
    swapped.merge(histogram_of(b))
    assert swapped.counts == left.counts


# ---------------------------------------------------------------------------
# StatRegistry (the union-merge the ROADMAP names for sharded stats)
# ---------------------------------------------------------------------------

registry_payload = st.fixed_dictionaries({
    "counters": st.dictionaries(
        st.sampled_from(["reads", "writes", "evictions"]),
        sample_lists, max_size=3),
    "latencies": st.dictionaries(
        st.sampled_from(["read_ns", "write_ns"]),
        sample_lists, max_size=2),
})


def registry_of(payload) -> StatRegistry:
    registry = StatRegistry(prefix="dev")
    for name, values in payload["counters"].items():
        for value in values:
            registry.counter(name).add(value)
    for name, values in payload["latencies"].items():
        for value in values:
            registry.latency(name).record(value)
    return registry


def assert_registry_close(left: StatRegistry, right: StatRegistry) -> None:
    left_snapshot, right_snapshot = left.snapshot(), right.snapshot()
    assert left_snapshot.keys() == right_snapshot.keys()
    for name in left_snapshot:
        assert close(left_snapshot[name], right_snapshot[name]), name


@settings(max_examples=40, deadline=None)
@given(registry_payload, registry_payload, registry_payload)
def test_registry_merge_associative(a, b, c):
    left = registry_of(a)
    left.merge(registry_of(b))
    left.merge(registry_of(c))
    bc = registry_of(b)
    bc.merge(registry_of(c))
    right = registry_of(a)
    right.merge(bc)
    assert_registry_close(left, right)


@settings(max_examples=40, deadline=None)
@given(registry_payload, registry_payload)
def test_registry_merge_order_insensitive(a, b):
    forward = registry_of(a)
    forward.merge(registry_of(b))
    backward = registry_of(b)
    backward.merge(registry_of(a))
    assert_registry_close(forward, backward)


# ---------------------------------------------------------------------------
# ExperimentResult (keyed runs, no arithmetic: exact in every order)
# ---------------------------------------------------------------------------


def run_result(platform: str, workload: str, value: float) -> RunResult:
    return RunResult(
        platform=platform, workload=workload, suite="microbench",
        operation_unit="ops", operations=value, total_ns=value * 10 + 1.0,
        app_ns=value, os_ns=0.0, ssd_ns=0.0, memory_stall_ns=0.0,
        compute_ns=value, instructions=int(value), memory_accesses=1,
        offchip_accesses=0, ipc=1.0, mips=1.0,
        energy=EnergyBreakdown(cpu_nj=value))


experiment_keys = st.lists(
    st.tuples(st.sampled_from(["mmap", "hams-TE", "oracle", "optane-M"]),
              st.sampled_from(["seqRd", "update", "BFS"])),
    unique=True, max_size=8)


def experiment_of(keys, offset=0.0) -> ExperimentResult:
    experiment = ExperimentResult(scale=SCALE)
    for index, (platform, workload) in enumerate(keys):
        experiment.add(platform, workload,
                       run_result(platform, workload, index + 1 + offset))
    return experiment


@settings(max_examples=50, deadline=None)
@given(experiment_keys, experiment_keys, experiment_keys)
def test_experiment_merge_associative_exact(a, b, c):
    left = experiment_of(a).merge(experiment_of(b)).merge(experiment_of(c))
    right = experiment_of(a).merge(
        experiment_of(b).merge(experiment_of(c)))
    assert left.results == right.results


@settings(max_examples=50, deadline=None)
@given(experiment_keys, experiment_keys)
def test_experiment_merge_order_insensitive_on_disjoint_shards(a, b):
    """Disjoint shards (the planner's case) commute exactly as mappings."""
    b = [key for key in b if key not in set(a)]
    forward = experiment_of(a).merge(experiment_of(b, offset=100))
    backward = experiment_of(b, offset=100).merge(experiment_of(a))
    assert forward.results == backward.results


@settings(max_examples=30, deadline=None)
@given(experiment_keys)
def test_experiment_merge_last_shard_wins_on_overlap(keys):
    """Overlapping keys take the later shard's run — matching add()."""
    first = experiment_of(keys)
    second = experiment_of(keys, offset=100)
    expected = dict(second.results)
    merged = experiment_of(keys).merge(second)
    assert dict(merged.results) == expected
