"""The public repro.api facade: Session and the one-shot conveniences."""

import pytest

import repro
from repro.api import (
    Session,
    compare,
    platforms,
    run_sharded,
    simulate,
    sweep,
    workloads,
)
from repro.runner.artifacts import run_result_to_dict
from repro.platforms.registry import PLATFORM_NAMES, available_platforms
from repro.runner.specs import RunSpec
from repro.units import KB
from repro.workloads.registry import ExperimentScale, all_workload_names

#: Tiny scale so the facade tests run in milliseconds per replay.
SCALE = ExperimentScale(capacity_scale=1 / 256, min_accesses=100,
                        max_accesses=200)


@pytest.fixture(scope="module")
def session():
    return Session(SCALE, workers=1)


class TestSession:
    def test_simulate_matches_runner(self, session):
        result = session.simulate("oracle", "seqRd")
        reference = session.runner.run_one("oracle", "seqRd")
        assert result == reference
        assert result.platform == "oracle"
        assert result.operations_per_second > 0

    def test_compare_builds_full_matrix(self, session):
        experiment = session.compare(["mmap", "oracle"], ["seqRd", "update"])
        assert set(experiment.results) == {
            ("mmap", "seqRd"), ("mmap", "update"),
            ("oracle", "seqRd"), ("oracle", "update")}
        assert experiment.mean_speedup("oracle", "mmap") > 1.0

    def test_sweep_labels_runs(self, session):
        experiment = session.sweep("hams-TE", ["update"], "hams",
                                   "mos_page_bytes", [KB(4), KB(128)],
                                   labels=["4KB", "128KB"])
        assert sorted(experiment.platforms()) == ["128KB", "4KB"]
        assert experiment.get("4KB", "update").operations_per_second > 0

    def test_sweep_default_labels_and_validation(self, session):
        experiment = session.sweep("hams-TE", ["update"], "hams",
                                   "mos_page_bytes", [KB(4)])
        assert experiment.platforms() == [str(KB(4))]
        with pytest.raises(ValueError):
            session.sweep("hams-TE", ["update"], "hams", "mos_page_bytes",
                          [KB(4)], labels=["a", "b"])

    def test_run_and_collect_take_explicit_specs(self, session):
        specs = [RunSpec("oracle", "seqRd"), RunSpec("mmap", "seqRd")]
        results = session.run(specs)
        assert [result.platform for result in results] == ["oracle", "mmap"]
        experiment = session.collect(specs)
        assert set(experiment.results) == {("oracle", "seqRd"),
                                           ("mmap", "seqRd")}

    def test_context_accessors(self, session):
        assert session.scale == SCALE
        assert session.workers == 1
        assert session.config.nvdimm.capacity_bytes > 0
        assert len(session.trace("seqRd")) >= 100

    def test_simulate_forwards_spec_knobs(self, session):
        stressed = session.simulate(
            "oracle", "seqRd", dataset_bytes_override=KB(512),
            platform_kwargs={"capacity_bytes": KB(1024)})
        assert stressed.operations_per_second > 0


class TestModuleLevelHelpers:
    def test_simulate_one_shot(self):
        result = simulate("oracle", "seqRd", scale=SCALE, workers=1)
        assert result.platform == "oracle"

    def test_compare_one_shot(self):
        experiment = compare(["oracle"], ["seqRd"], scale=SCALE, workers=1)
        assert ("oracle", "seqRd") in experiment.results

    def test_sweep_one_shot(self):
        experiment = sweep("hams-TE", ["update"], "hams", "mos_page_bytes",
                           [KB(128)], labels=["128KB"], scale=SCALE,
                           workers=1)
        assert experiment.platforms() == ["128KB"]

    def test_axis_helpers(self):
        assert platforms() == available_platforms()
        assert platforms(figure_order=True) == list(PLATFORM_NAMES)
        assert workloads() == all_workload_names()


def _as_dicts(experiment):
    return {key: run_result_to_dict(result)
            for key, result in experiment.results.items()}


class TestShardedFacade:
    def test_run_sharded_matches_compare(self, session):
        direct = session.compare(["mmap", "oracle"], ["seqRd", "update"])
        sharded = run_sharded(["mmap", "oracle"], ["seqRd", "update"],
                              shards=3, scale=SCALE, workers=1)
        assert _as_dicts(sharded) == _as_dicts(direct)

    def test_session_default_shards_routes_every_verb(self, session):
        sharded_session = Session(SCALE, workers=1, shards=2)
        direct = session.compare(["mmap", "oracle"], ["seqRd"])
        assert _as_dicts(sharded_session.compare(
            ["mmap", "oracle"], ["seqRd"])) == _as_dicts(direct)
        assert _as_dicts(sharded_session.collect(
            [RunSpec("mmap", "seqRd"), RunSpec("oracle", "seqRd")])) == \
            _as_dicts(direct)

    def test_sweep_accepts_shards(self, session):
        direct = session.sweep("hams-TE", ["update"], "hams",
                               "mos_page_bytes", [KB(4), KB(128)],
                               labels=["4KB", "128KB"])
        sharded = session.sweep("hams-TE", ["update"], "hams",
                                "mos_page_bytes", [KB(4), KB(128)],
                                labels=["4KB", "128KB"], shards=2)
        assert _as_dicts(sharded) == _as_dicts(direct)

    def test_sharded_session_honors_its_cache_dir(self, tmp_path,
                                                  monkeypatch):
        cache_dir = tmp_path / "cache"
        first = Session(SCALE, workers=1, shards=2, cache_dir=cache_dir)
        expected = _as_dicts(first.compare(["mmap", "oracle"], ["seqRd"]))
        assert list(cache_dir.glob("*.json"))

        # A later sharded session over the same cache resolves every run
        # from it without executing anything.
        from repro.runner import parallel as parallel_module

        def boom(*args, **kwargs):
            raise AssertionError("cached sharded run must not re-execute")

        monkeypatch.setattr(parallel_module, "execute_spec", boom)
        replay = Session(SCALE, workers=1, shards=2, cache_dir=cache_dir)
        assert _as_dicts(replay.compare(["mmap", "oracle"],
                                        ["seqRd"])) == expected

    def test_shards_zero_means_unsharded(self):
        """The natural env-var 'off' value must not crash the planner."""
        session = Session(SCALE, workers=1, shards=0)
        experiment = session.compare(["mmap"], ["seqRd"])
        assert ("mmap", "seqRd") in experiment.results

    def test_run_sharded_keeps_spool_artifacts(self, tmp_path):
        run_sharded(["mmap"], ["seqRd"], shards=2, scale=SCALE, workers=1,
                    spool_dir=tmp_path / "spool")
        results = sorted(
            (tmp_path / "spool" / "results").glob("shard-*.json"))
        assert len(results) == 2


class TestTopLevelExports:
    def test_facade_reexported_from_repro(self):
        assert repro.Session is Session
        assert repro.simulate is simulate
        assert repro.compare is compare
        assert repro.sweep is sweep
        assert repro.run_sharded is run_sharded

    def test_batch_protocol_exported(self):
        for name in ("AccessStream", "MemoryRequestBatch",
                     "MemoryServiceBatch", "MemoryServiceResult"):
            assert hasattr(repro, name), name
