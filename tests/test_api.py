"""The public repro.api facade: Session and the one-shot conveniences."""

import pytest

import repro
from repro.api import Session, compare, platforms, simulate, sweep, workloads
from repro.platforms.registry import PLATFORM_NAMES, available_platforms
from repro.runner.specs import RunSpec
from repro.units import KB
from repro.workloads.registry import ExperimentScale, all_workload_names

#: Tiny scale so the facade tests run in milliseconds per replay.
SCALE = ExperimentScale(capacity_scale=1 / 256, min_accesses=100,
                        max_accesses=200)


@pytest.fixture(scope="module")
def session():
    return Session(SCALE, workers=1)


class TestSession:
    def test_simulate_matches_runner(self, session):
        result = session.simulate("oracle", "seqRd")
        reference = session.runner.run_one("oracle", "seqRd")
        assert result == reference
        assert result.platform == "oracle"
        assert result.operations_per_second > 0

    def test_compare_builds_full_matrix(self, session):
        experiment = session.compare(["mmap", "oracle"], ["seqRd", "update"])
        assert set(experiment.results) == {
            ("mmap", "seqRd"), ("mmap", "update"),
            ("oracle", "seqRd"), ("oracle", "update")}
        assert experiment.mean_speedup("oracle", "mmap") > 1.0

    def test_sweep_labels_runs(self, session):
        experiment = session.sweep("hams-TE", ["update"], "hams",
                                   "mos_page_bytes", [KB(4), KB(128)],
                                   labels=["4KB", "128KB"])
        assert sorted(experiment.platforms()) == ["128KB", "4KB"]
        assert experiment.get("4KB", "update").operations_per_second > 0

    def test_sweep_default_labels_and_validation(self, session):
        experiment = session.sweep("hams-TE", ["update"], "hams",
                                   "mos_page_bytes", [KB(4)])
        assert experiment.platforms() == [str(KB(4))]
        with pytest.raises(ValueError):
            session.sweep("hams-TE", ["update"], "hams", "mos_page_bytes",
                          [KB(4)], labels=["a", "b"])

    def test_run_and_collect_take_explicit_specs(self, session):
        specs = [RunSpec("oracle", "seqRd"), RunSpec("mmap", "seqRd")]
        results = session.run(specs)
        assert [result.platform for result in results] == ["oracle", "mmap"]
        experiment = session.collect(specs)
        assert set(experiment.results) == {("oracle", "seqRd"),
                                           ("mmap", "seqRd")}

    def test_context_accessors(self, session):
        assert session.scale == SCALE
        assert session.workers == 1
        assert session.config.nvdimm.capacity_bytes > 0
        assert len(session.trace("seqRd")) >= 100

    def test_simulate_forwards_spec_knobs(self, session):
        stressed = session.simulate(
            "oracle", "seqRd", dataset_bytes_override=KB(512),
            platform_kwargs={"capacity_bytes": KB(1024)})
        assert stressed.operations_per_second > 0


class TestModuleLevelHelpers:
    def test_simulate_one_shot(self):
        result = simulate("oracle", "seqRd", scale=SCALE, workers=1)
        assert result.platform == "oracle"

    def test_compare_one_shot(self):
        experiment = compare(["oracle"], ["seqRd"], scale=SCALE, workers=1)
        assert ("oracle", "seqRd") in experiment.results

    def test_sweep_one_shot(self):
        experiment = sweep("hams-TE", ["update"], "hams", "mos_page_bytes",
                           [KB(128)], labels=["128KB"], scale=SCALE,
                           workers=1)
        assert experiment.platforms() == ["128KB"]

    def test_axis_helpers(self):
        assert platforms() == available_platforms()
        assert platforms(figure_order=True) == list(PLATFORM_NAMES)
        assert workloads() == all_workload_names()


class TestTopLevelExports:
    def test_facade_reexported_from_repro(self):
        assert repro.Session is Session
        assert repro.simulate is simulate
        assert repro.compare is compare
        assert repro.sweep is sweep

    def test_batch_protocol_exported(self):
        for name in ("AccessStream", "MemoryRequestBatch",
                     "MemoryServiceBatch", "MemoryServiceResult"):
            assert hasattr(repro, name), name
