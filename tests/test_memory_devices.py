"""Memory devices: DDR4 DRAM timing, NVDIMM-N state machine, Optane model, MCH."""

import pytest

from repro.config import DDRConfig, NVDIMMConfig, OptaneConfig, default_config
from repro.memory.dram import DRAMDevice
from repro.memory.mch import MemoryControllerHub
from repro.memory.nvdimm import NVDIMM, NVDIMMState
from repro.memory.optane import OptaneDCPMM
from repro.units import GB, KB, MB


class TestDRAMDevice:
    def test_row_hit_is_faster_than_miss(self):
        dram = DRAMDevice(DDRConfig(), GB(1))
        assert dram.line_access_ns(row_hit=True) < dram.line_access_ns(row_hit=False)

    def test_expected_line_latency_between_hit_and_miss(self):
        dram = DRAMDevice(DDRConfig(), GB(1))
        expected = dram.expected_line_access_ns()
        assert dram.line_access_ns(True) <= expected <= dram.line_access_ns(False)

    def test_bulk_access_dominated_by_bandwidth(self):
        dram = DRAMDevice(DDRConfig(), GB(1))
        assert dram.bulk_access_ns(KB(128)) > dram.bulk_access_ns(KB(4))

    def test_4kb_access_latency_is_sub_microsecond_scale(self):
        """A 4 KB page access on DDR4-2133 is well under the ~8 us ULL read."""
        dram = DRAMDevice(DDRConfig(), GB(1))
        assert dram.bulk_access_ns(KB(4)) < 3_000.0

    def test_access_records_traffic(self):
        dram = DRAMDevice(DDRConfig(), GB(1))
        dram.access(64, is_write=False)
        dram.access(KB(4), is_write=True)
        stats = dram.statistics()
        assert stats["reads"] == 1
        assert stats["writes"] == 1
        assert dram.bytes_total == 64 + KB(4)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DRAMDevice(DDRConfig(), 0)
        with pytest.raises(ValueError):
            DRAMDevice(DDRConfig(), GB(1), row_hit_rate=1.5)
        with pytest.raises(ValueError):
            DRAMDevice(DDRConfig(), GB(1)).bulk_access_ns(0)


class TestNVDIMM:
    def test_pinned_region_layout(self):
        nvdimm = NVDIMM(NVDIMMConfig())
        base = nvdimm.pinned_region_base()
        assert nvdimm.is_pinned_address(base)
        assert not nvdimm.is_pinned_address(base - 1)
        assert nvdimm.cacheable_bytes == GB(8) - MB(512)

    def test_pinned_check_rejects_out_of_range(self):
        nvdimm = NVDIMM(NVDIMMConfig())
        with pytest.raises(ValueError):
            nvdimm.is_pinned_address(-1)
        with pytest.raises(ValueError):
            nvdimm.is_pinned_address(nvdimm.capacity_bytes)

    def test_access_while_online(self):
        nvdimm = NVDIMM(NVDIMMConfig())
        result = nvdimm.access(64, is_write=False)
        assert result.latency_ns > 0

    def test_backup_restore_cycle(self):
        nvdimm = NVDIMM(NVDIMMConfig())
        backup_ns = nvdimm.power_failure()
        assert nvdimm.state is NVDIMMState.OFFLINE
        assert backup_ns > 0
        restore_ns = nvdimm.power_restore()
        assert nvdimm.state is NVDIMMState.ONLINE
        assert restore_ns > 0
        assert nvdimm.backups_performed == 1
        assert nvdimm.restores_performed == 1

    def test_access_during_outage_rejected(self):
        nvdimm = NVDIMM(NVDIMMConfig())
        nvdimm.power_failure()
        with pytest.raises(RuntimeError):
            nvdimm.access(64, is_write=False)

    def test_restore_requires_offline(self):
        nvdimm = NVDIMM(NVDIMMConfig())
        with pytest.raises(RuntimeError):
            nvdimm.power_restore()

    def test_double_failure_rejected(self):
        nvdimm = NVDIMM(NVDIMMConfig())
        nvdimm.power_failure()
        with pytest.raises(RuntimeError):
            nvdimm.power_failure()

    def test_partial_backup_is_faster(self):
        full = NVDIMM(NVDIMMConfig())
        partial = NVDIMM(NVDIMMConfig())
        assert partial.power_failure(dirty_bytes=MB(512)) < full.power_failure()


class TestOptane:
    def test_fine_grained_access_wastes_bandwidth(self):
        optane = OptaneDCPMM(OptaneConfig())
        optane.read(64)
        assert optane.bandwidth_waste_ratio == pytest.approx(256 / 64)

    def test_read_latency_grows_with_size(self):
        optane = OptaneDCPMM(OptaneConfig())
        assert optane.read(KB(4)).latency_ns > optane.read(64).latency_ns

    def test_xpbuffer_absorbs_small_write_bursts(self):
        optane = OptaneDCPMM(OptaneConfig())
        first = optane.write(256)
        assert first.hit_xpbuffer
        assert first.latency_ns == pytest.approx(OptaneConfig().write_latency_ns)

    def test_sustained_writes_spill_to_media(self):
        optane = OptaneDCPMM(OptaneConfig())
        results = [optane.write(KB(4)) for _ in range(16)]
        assert any(not result.hit_xpbuffer for result in results)

    def test_statistics(self):
        optane = OptaneDCPMM(OptaneConfig())
        optane.read(64)
        optane.write(64)
        stats = optane.statistics()
        assert stats["reads"] == 1
        assert stats["writes"] == 1
        assert stats["bytes_internal"] >= stats["bytes_requested"]

    def test_invalid_sizes(self):
        optane = OptaneDCPMM(OptaneConfig())
        with pytest.raises(ValueError):
            optane.read(0)
        with pytest.raises(ValueError):
            optane.write(-1)


class TestMCH:
    def test_build_loose_topology_has_pcie(self):
        mch = MemoryControllerHub.build(default_config())
        assert mch.pcie is not None
        assert mch.storage_link is mch.pcie

    def test_build_tight_topology_uses_ddr(self):
        mch = MemoryControllerHub.build(default_config(), attach_ssd_to_ddr=True)
        assert mch.pcie is None
        assert mch.storage_link is mch.ddr_bus

    def test_statistics_merge_components(self):
        mch = MemoryControllerHub.build(default_config())
        stats = mch.statistics()
        assert any(key.startswith("nvdimm.") for key in stats)
        assert any(key.startswith("ddr_bus.") for key in stats)
