"""Host substrate: CPU model, cache hierarchy, MMU/TLB, OS storage stack."""

import pytest

from repro.config import CacheConfig, CPUConfig, OSStackConfig
from repro.host.caches import CacheHierarchy, CacheLevel
from repro.host.cpu import CPUModel
from repro.host.mmu import MMU, TLB
from repro.host.os_stack import OSStorageStack, PageCache
from repro.units import KB, MB, us


class TestCPUModel:
    def test_compute_time_follows_cpi(self):
        cpu = CPUModel(CPUConfig(frequency_ghz=2.0, base_cpi=1.0))
        assert cpu.execute_compute(1000) == pytest.approx(500.0)

    def test_ipc_is_one_without_stalls(self):
        cpu = CPUModel(CPUConfig(frequency_ghz=2.0, base_cpi=1.0))
        cpu.execute_compute(10_000)
        assert cpu.ipc == pytest.approx(1.0)

    def test_memory_stalls_lower_ipc(self):
        cpu = CPUModel(CPUConfig())
        cpu.execute_compute(1000)
        cpu.execute_memory(us(100))
        assert cpu.ipc < 0.1

    def test_breakdown_categories(self):
        cpu = CPUModel(CPUConfig())
        cpu.execute_compute(1000)
        cpu.execute_memory(200.0)
        cpu.charge_os(300.0)
        cpu.charge_storage(400.0)
        breakdown = cpu.breakdown()
        assert breakdown["os_ns"] == 300.0
        assert breakdown["ssd_ns"] == 400.0
        assert breakdown["total_ns"] == pytest.approx(
            breakdown["app_ns"] + 300.0 + 400.0)

    def test_mips_positive(self):
        cpu = CPUModel(CPUConfig())
        cpu.execute_compute(1_000_000)
        assert cpu.mips > 0

    def test_negative_inputs_rejected(self):
        cpu = CPUModel(CPUConfig())
        with pytest.raises(ValueError):
            cpu.execute_compute(-1)
        with pytest.raises(ValueError):
            cpu.execute_memory(-1.0)
        with pytest.raises(ValueError):
            cpu.charge_os(-1.0)

    def test_reset(self):
        cpu = CPUModel(CPUConfig())
        cpu.execute_compute(100)
        cpu.reset()
        assert cpu.account.instructions == 0


class TestCacheLevel:
    def test_hit_after_fill(self):
        level = CacheLevel("L1", KB(4), 64, 1.0, associativity=2)
        assert level.lookup(0, is_write=False) is False
        level.fill(0, dirty=False)
        assert level.lookup(0, is_write=False) is True

    def test_eviction_reports_dirty_victim(self):
        level = CacheLevel("L1", 2 * 64, 64, 1.0, associativity=2)
        level.fill(0, dirty=True)
        level.fill(64 * level.num_sets, dirty=False)
        victim_dirty = level.fill(2 * 64 * level.num_sets, dirty=False)
        assert victim_dirty is True
        assert level.writebacks == 1

    def test_hit_rate(self):
        level = CacheLevel("L1", KB(64), 64, 1.0)
        level.lookup(0, False)
        level.fill(0, False)
        level.lookup(0, False)
        assert level.hit_rate == pytest.approx(0.5)


class TestCacheHierarchy:
    def test_first_access_misses_everywhere(self):
        hierarchy = CacheHierarchy(CacheConfig())
        result = hierarchy.access(0x1000, is_write=False)
        assert result.is_miss
        assert hierarchy.memory_accesses == 1

    def test_second_access_hits_l1(self):
        hierarchy = CacheHierarchy(CacheConfig())
        hierarchy.access(0x1000, False)
        result = hierarchy.access(0x1000, False)
        assert result.hit_level == "L1"

    def test_l2_hit_after_l1_eviction(self):
        config = CacheConfig(l1_size_bytes=KB(1), l2_size_bytes=MB(1))
        hierarchy = CacheHierarchy(config)
        hierarchy.access(0, False)
        # Evict line 0 from tiny L1 by touching many other lines.
        for index in range(1, 64):
            hierarchy.access(index * 64 * 2, False)
        result = hierarchy.access(0, False)
        assert result.hit_level in ("L1", "L2")

    def test_sequential_scan_has_no_reuse(self):
        hierarchy = CacheHierarchy(CacheConfig())
        for index in range(1000):
            hierarchy.access(index * 64, False)
        assert hierarchy.miss_rate == pytest.approx(1.0)

    def test_hot_loop_has_high_hit_rate(self):
        hierarchy = CacheHierarchy(CacheConfig())
        for _ in range(20):
            for index in range(16):
                hierarchy.access(index * 64, False)
        assert hierarchy.miss_rate < 0.1

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(CacheConfig()).access(-1, False)


class TestTLBAndMMU:
    def test_tlb_hit_after_first_access(self):
        tlb = TLB(entries=4)
        assert tlb.lookup(1) is False
        assert tlb.lookup(1) is True
        assert tlb.hit_rate == pytest.approx(0.5)

    def test_tlb_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.lookup(1)
        tlb.lookup(2)
        tlb.lookup(3)          # evicts 1
        assert tlb.lookup(1) is False

    def test_tlb_flush(self):
        tlb = TLB(entries=4)
        tlb.lookup(1)
        tlb.flush()
        assert tlb.lookup(1) is False

    def test_mmu_page_fault_tracking(self):
        mmu = MMU(page_size=KB(4))
        result = mmu.translate(KB(8) + 12)
        assert result.page_number == 2
        assert not result.page_present
        assert mmu.page_faults == 1
        mmu.map_page(2)
        assert mmu.translate(KB(8)).page_present
        assert mmu.resident_pages == 1

    def test_mmu_unmap_invalidates_tlb(self):
        mmu = MMU(page_size=KB(4))
        mmu.map_page(5)
        mmu.translate(5 * KB(4))
        mmu.unmap_page(5)
        result = mmu.translate(5 * KB(4))
        assert not result.page_present
        assert not result.tlb_hit

    def test_page_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            MMU(page_size=3000)

    def test_statistics(self):
        mmu = MMU(page_size=KB(4))
        mmu.translate(0)
        stats = mmu.statistics()
        assert stats["translations"] == 1
        assert stats["page_faults"] == 1


class TestPageCache:
    def test_miss_then_install_then_hit(self):
        cache = PageCache(KB(16), KB(4))
        assert cache.access(1, False) is False
        cache.install(1)
        assert cache.access(1, False) is True

    def test_lru_eviction(self):
        cache = PageCache(KB(8), KB(4))
        cache.install(1, dirty=True)
        cache.install(2)
        evicted = cache.install(3)
        assert evicted == (1, True)
        assert cache.dirty_writebacks == 1

    def test_write_marks_dirty(self):
        cache = PageCache(KB(16), KB(4))
        cache.install(1)
        cache.access(1, is_write=True)
        assert cache.dirty_pages() == [1]

    def test_clean(self):
        cache = PageCache(KB(16), KB(4))
        cache.install(1, dirty=True)
        cache.clean(1)
        assert cache.dirty_pages() == []

    def test_hit_rate(self):
        cache = PageCache(KB(16), KB(4))
        cache.access(1, False)
        cache.install(1)
        cache.access(1, False)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_resident_pages_in_lru_order(self):
        cache = PageCache(KB(16), KB(4))
        for page in (1, 2, 3):
            cache.install(page)
        cache.access(1, False)
        assert cache.resident_pages() == [2, 3, 1]


class TestPageCacheCapacityEdges:
    """Regression tests for the zero-capacity install guard and the
    unbounded (never-evicting) regime."""

    def test_zero_capacity_never_retains_pages(self):
        cache = PageCache(0, KB(4))
        assert cache.capacity_pages == 0
        for _ in range(3):
            assert cache.access(7, True) is False
            assert cache.install(7, dirty=True) is None
        assert len(cache) == 0
        assert cache.resident_pages() == []
        assert 7 not in cache

    def test_zero_capacity_counts_misses_consistently(self):
        cache = PageCache(0, KB(4))
        for page in (1, 1, 2, 3, 2):
            assert cache.access(page, False) is False
            cache.install(page)
        assert cache.misses == 5
        assert cache.hits == 0
        assert cache.hit_rate == 0.0
        # No residency means no victims: the guard must never manufacture
        # an eviction (or a dirty writeback) out of an empty cache.
        assert cache.dirty_writebacks == 0

    def test_sub_page_capacity_rounds_down_to_zero(self):
        cache = PageCache(KB(4) - 1, KB(4))
        assert cache.capacity_pages == 0
        assert cache.install(1, dirty=True) is None
        assert len(cache) == 0

    def test_capacity_one_evicts_on_every_new_page(self):
        cache = PageCache(KB(4), KB(4))
        assert cache.install(1, dirty=True) is None
        assert cache.install(2) == (1, True)
        assert cache.install(3) == (2, False)
        assert cache.resident_pages() == [3]
        assert cache.dirty_writebacks == 1

    def test_unbounded_cache_never_evicts(self):
        cache = PageCache(KB(4) * 10_000, KB(4))
        for page in range(1_000):
            assert cache.install(page, dirty=page % 2 == 0) is None
        assert len(cache) == 1_000
        assert cache.dirty_writebacks == 0
        assert cache.resident_pages() == list(range(1_000))
        assert cache.dirty_pages() == [p for p in range(1_000) if p % 2 == 0]


class TestOSStorageStack:
    def test_major_fault_cost_matches_paper_range(self):
        """The paper quotes 15-20 us of software time per fault."""
        stack = OSStorageStack(OSStackConfig(), KB(4))
        cost = stack.fault_cost(needs_io=True)
        assert us(10) <= cost.total_ns <= us(25)

    def test_minor_fault_is_cheaper(self):
        stack = OSStorageStack(OSStackConfig(), KB(4))
        major = stack.fault_cost(needs_io=True)
        minor = stack.fault_cost(needs_io=False)
        assert minor.total_ns < major.total_ns
        assert minor.io_stack_ns == 0.0

    def test_fault_accounting(self):
        stack = OSStorageStack(OSStackConfig(), KB(4))
        stack.fault_cost()
        stack.fault_cost()
        stats = stack.statistics()
        assert stats["page_faults_serviced"] == 2
        assert stats["context_switches"] == 4

    def test_writeback_cost_positive(self):
        stack = OSStorageStack(OSStackConfig(), KB(4))
        assert stack.writeback_cost() > 0

    def test_msync_scales_with_dirty_pages(self):
        stack = OSStorageStack(OSStackConfig(), KB(4))
        assert stack.msync_cost(10) > stack.msync_cost(1) > stack.msync_cost(0)

    def test_msync_rejects_negative(self):
        with pytest.raises(ValueError):
            OSStorageStack(OSStackConfig(), KB(4)).msync_cost(-1)
