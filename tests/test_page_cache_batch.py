"""Property suite: ``PageCache.access_batch`` ≡ the scalar access/install replay.

The batched LRU engine powering the DRAM-cache platforms' vectorized
``service_batch`` promises *order-exactness*: for any access stream and any
install policy, one ``access_batch`` call must leave the cache in exactly
the state the scalar ``access``/``install`` loop would — same residency
set, same LRU order, same dirty flags, same ``hits``/``misses``/
``dirty_writebacks`` counters — and must report the same hit mask and the
same eviction ``(page, dirty)`` sequence.  Hypothesis drives arbitrary page
streams, capacities (including the 0 and 1 edge cases), chunked submission
and the chunk-install policy of nvdimm-C (whose install can evict the
faulting page itself); a state machine interleaves batched and scalar
operations against a mirrored reference cache.
"""

from typing import List, Optional, Tuple

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.host.os_stack import PageCache

PAGE_SIZE = 4096

#: Small page universe so streams collide, evict and re-touch aggressively.
pages_st = st.integers(min_value=0, max_value=9)
stream_st = st.lists(st.tuples(pages_st, st.booleans()), max_size=120)
#: Capacities in pages; 0 (retains nothing) and 1 (evicts on every new
#: page) are the edge cases the ISSUE calls out.
capacity_st = st.sampled_from([0, 1, 2, 3, 5, 8, 1 << 20])


def make_cache(capacity_pages: int) -> PageCache:
    return PageCache(capacity_pages * PAGE_SIZE, PAGE_SIZE)


def scalar_replay(cache: PageCache, stream, install=None):
    """The reference loop ``access_batch`` must reproduce bit-for-bit."""
    hits: List[bool] = []
    evictions: List[List[Tuple[int, bool]]] = []
    for page, is_write in stream:
        if cache.access(page, is_write):
            hits.append(True)
        else:
            hits.append(False)
            if install is None:
                evicted = cache.install(page, dirty=is_write)
                evictions.append([] if evicted is None else [evicted])
            else:
                evictions.append(install(page, is_write))
    return hits, evictions


def batched_replay(cache: PageCache, stream, install=None):
    pages = np.asarray([page for page, _ in stream], dtype=np.int64)
    writes = np.asarray([write for _, write in stream], dtype=bool)
    result = cache.access_batch(pages, writes, install=install)
    evictions = [list(eviction) for eviction in result.evictions]
    return result.hits.tolist(), evictions, result


def cache_state(cache: PageCache):
    """Every observable of the cache, including LRU order and dirty flags."""
    return (cache.resident_pages(), sorted(cache.dirty_pages()),
            cache.hits, cache.misses, cache.dirty_writebacks)


def chunk_install(cache: PageCache, chunk_pages: int):
    """The nvdimm-C-style policy: install the whole chunk around the miss.

    With ``capacity < chunk_pages`` the chunk's own tail evicts the
    faulting page again — the pathological case the run-length collapse
    must fall out of.
    """

    def install(page: int, is_write: bool) -> List[Tuple[int, bool]]:
        first = (page // chunk_pages) * chunk_pages
        evictions = []
        for offset in range(chunk_pages):
            evicted = cache.install(first + offset,
                                    dirty=is_write and offset == 0)
            if evicted is not None:
                evictions.append(evicted)
        return evictions

    return install


@settings(max_examples=200, deadline=None)
@given(capacity=capacity_st, stream=stream_st)
def test_access_batch_matches_scalar_replay(capacity, stream):
    scalar_cache = make_cache(capacity)
    batched_cache = make_cache(capacity)
    scalar_hits, scalar_evictions = scalar_replay(scalar_cache, stream)
    batched_hits, batched_evictions, result = batched_replay(batched_cache,
                                                             stream)
    assert batched_hits == scalar_hits
    assert batched_evictions == scalar_evictions
    assert cache_state(batched_cache) == cache_state(scalar_cache)
    assert result.miss_count == scalar_hits.count(False)
    assert result.miss_indices.tolist() == \
        [i for i, hit in enumerate(scalar_hits) if not hit]


@settings(max_examples=150, deadline=None)
@given(capacity=capacity_st, stream=stream_st,
       boundaries=st.lists(st.integers(min_value=0, max_value=120),
                           max_size=6))
def test_access_batch_is_split_invariant(capacity, stream, boundaries):
    """Chunking the stream across several access_batch calls changes nothing
    (the replay loop submits one call per trace chunk)."""
    scalar_cache = make_cache(capacity)
    scalar_replay(scalar_cache, stream)
    chunked_cache = make_cache(capacity)
    cuts = sorted({b for b in boundaries if b < len(stream)} | {0, len(stream)})
    for start, end in zip(cuts, cuts[1:]):
        batched_replay(chunked_cache, stream[start:end])
    assert cache_state(chunked_cache) == cache_state(scalar_cache)


@settings(max_examples=150, deadline=None)
@given(capacity=st.sampled_from([0, 1, 2, 3, 5, 8, 1 << 20]),
       chunk_pages=st.sampled_from([1, 2, 4, 8]),
       stream=stream_st)
def test_access_batch_matches_scalar_with_chunk_install(capacity, chunk_pages,
                                                        stream):
    """The nvdimm-C migration-chunk policy — including installs that evict
    the faulting page itself when capacity < chunk — stays order-exact."""
    scalar_cache = make_cache(capacity)
    batched_cache = make_cache(capacity)
    scalar_hits, scalar_evictions = scalar_replay(
        scalar_cache, stream, install=chunk_install(scalar_cache, chunk_pages))
    batched_hits, batched_evictions, _ = batched_replay(
        batched_cache, stream,
        install=chunk_install(batched_cache, chunk_pages))
    assert batched_hits == scalar_hits
    assert batched_evictions == scalar_evictions
    assert cache_state(batched_cache) == cache_state(scalar_cache)


@settings(max_examples=100, deadline=None)
@given(stream=stream_st)
def test_zero_capacity_cache_never_retains(stream):
    """Capacity 0: every access misses, nothing is ever resident, and the
    install guard never manufactures an eviction."""
    cache = make_cache(0)
    hits, evictions, result = batched_replay(cache, stream)
    assert not any(hits)
    assert result.miss_count == len(stream)
    assert all(eviction == [] for eviction in evictions)
    assert cache.resident_pages() == []
    assert len(cache) == 0
    assert cache.misses == len(stream)
    assert cache.hits == 0
    assert cache.dirty_writebacks == 0


@settings(max_examples=100, deadline=None)
@given(stream=stream_st)
def test_capacity_one_cache_keeps_only_the_last_page(stream):
    cache = make_cache(1)
    scalar_cache = make_cache(1)
    scalar_replay(scalar_cache, stream)
    batched_replay(cache, stream)
    assert cache_state(cache) == cache_state(scalar_cache)
    if stream:
        assert cache.resident_pages() == [stream[-1][0]]


def test_empty_batch_is_a_no_op():
    cache = make_cache(4)
    cache.install(3, dirty=True)
    before = cache_state(cache)
    result = cache.access_batch(np.empty(0, dtype=np.int64),
                                np.empty(0, dtype=bool))
    assert cache_state(cache) == before
    assert result.hits.tolist() == []
    assert result.miss_count == 0


def test_mismatched_columns_rejected():
    cache = make_cache(4)
    with np.testing.assert_raises(ValueError):
        cache.access_batch(np.asarray([1, 2]), np.asarray([True]))


class BatchedVsScalarCache(RuleBasedStateMachine):
    """Interleave batched and scalar operations against a mirrored cache.

    One cache receives ``access_batch`` for whole streams, the mirror
    replays the same stream scalar-wise; the other rules (scalar access,
    install, clean) hit both identically.  After every rule the two caches
    must be indistinguishable.
    """

    def __init__(self):
        super().__init__()
        self.capacity: Optional[int] = None
        self.batched: Optional[PageCache] = None
        self.scalar: Optional[PageCache] = None

    def _ensure(self, capacity: int) -> None:
        if self.batched is None:
            self.capacity = capacity
            self.batched = make_cache(capacity)
            self.scalar = make_cache(capacity)

    @rule(capacity=st.sampled_from([0, 1, 2, 3, 8]), stream=stream_st)
    def submit_batch(self, capacity, stream):
        self._ensure(capacity)
        scalar_hits, scalar_evictions = scalar_replay(self.scalar, stream)
        batched_hits, batched_evictions, _ = batched_replay(self.batched,
                                                            stream)
        assert batched_hits == scalar_hits
        assert batched_evictions == scalar_evictions

    @rule(capacity=st.sampled_from([0, 1, 2, 3, 8]), page=pages_st,
          write=st.booleans())
    def scalar_access(self, capacity, page, write):
        self._ensure(capacity)
        assert (self.batched.access(page, write)
                == self.scalar.access(page, write))

    @rule(capacity=st.sampled_from([0, 1, 2, 3, 8]), page=pages_st,
          dirty=st.booleans())
    def scalar_install(self, capacity, page, dirty):
        self._ensure(capacity)
        assert (self.batched.install(page, dirty)
                == self.scalar.install(page, dirty))

    @rule(capacity=st.sampled_from([0, 1, 2, 3, 8]), page=pages_st)
    def clean_page(self, capacity, page):
        self._ensure(capacity)
        self.batched.clean(page)
        self.scalar.clean(page)

    @invariant()
    def caches_indistinguishable(self):
        if self.batched is not None:
            assert cache_state(self.batched) == cache_state(self.scalar)
            assert self.batched.hit_rate == self.scalar.hit_rate


BatchedVsScalarCache.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None)
TestBatchedVsScalarCache = BatchedVsScalarCache.TestCase
