"""The out-of-core trace store: format round-trips, corruption rejection,
streaming generation parity, golden file-backed replay, cache-key identity.
"""

import dataclasses
import struct
import zlib
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import default_config
from repro.distrib.manifest import estimate_spec_cost
from repro.platforms.registry import available_platforms, create_platform
from repro.runner.artifacts import run_cache_key
from repro.runner.cli import main as repro_main
from repro.runner.specs import RunSpec, matrix_specs
from repro.trace import (
    FileAccessStream,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    build_trace_file,
    import_binary,
    import_csv,
    load_trace_file,
    read_trace_footer,
    trace_source_name,
    write_stream,
)
from repro.trace.format import END_MAGIC, HEADER_SIZE, MAGIC
from repro.workloads.generators import (
    HotspotPattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    ZipfianPattern,
)
from repro.workloads.registry import (
    ExperimentScale,
    build_trace,
    scale_system_config,
)
from repro.workloads.trace import AccessStream
from repro.units import KB, MB

SCALE = ExperimentScale(capacity_scale=1.0 / 256.0, min_accesses=200,
                        max_accesses=600)


def assert_streams_equal(a, b):
    assert len(a) == len(b)
    assert np.array_equal(np.asarray(a.addresses), np.asarray(b.addresses))
    assert np.array_equal(np.asarray(a.sizes), np.asarray(b.sizes))
    assert np.array_equal(np.asarray(a.writes), np.asarray(b.writes))


streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2**40),
              st.integers(min_value=1, max_value=KB(64)),
              st.booleans()),
    max_size=80,
).map(lambda rows: AccessStream.from_arrays(
    np.array([row[0] for row in rows], dtype=np.int64),
    np.array([row[1] for row in rows], dtype=np.int64),
    np.array([row[2] for row in rows], dtype=bool)))


# ---------------------------------------------------------------------------
# Round-trips
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(stream=streams,
           chunk_accesses=st.integers(min_value=1, max_value=23),
           compression=st.sampled_from(["none", "zlib"]))
    def test_write_read_bit_exact(self, tmp_path_factory, stream,
                                  chunk_accesses, compression):
        path = tmp_path_factory.mktemp("rt") / "t.trace"
        write_stream(path, stream, chunk_accesses=chunk_accesses,
                     compression=compression)
        with TraceReader(path) as reader:
            assert_streams_equal(reader.full_stream(), stream)
            assert reader.verify() == reader.footer["content_hash"]

    @settings(max_examples=25, deadline=None)
    @given(stream=streams, chunks_a=st.integers(min_value=1, max_value=7),
           chunks_b=st.integers(min_value=8, max_value=64))
    def test_split_invariance(self, tmp_path_factory, stream, chunks_a,
                              chunks_b):
        """Re-chunking and re-compressing never change content or hash."""
        base = tmp_path_factory.mktemp("si")
        a = write_stream(base / "a.trace", stream, chunk_accesses=chunks_a)
        b = write_stream(base / "b.trace", stream, chunk_accesses=chunks_b,
                         compression="zlib")
        fa, fb = read_trace_footer(a), read_trace_footer(b)
        assert fa["content_hash"] == fb["content_hash"]
        with TraceReader(a) as ra, TraceReader(b) as rb:
            assert ra.full_stream() == rb.full_stream()

    def test_compressed_equals_uncompressed_replay(self, tmp_path):
        raw = build_trace_file("update", tmp_path / "u.trace", scale=SCALE,
                               chunk_accesses=64)
        packed = build_trace_file("update", tmp_path / "z.trace",
                                  scale=SCALE, chunk_accesses=97,
                                  compression="zlib")
        mem = build_trace("update", SCALE)
        for path in (raw, packed):
            trace = load_trace_file(path)
            assert trace.stream == mem.stream
            for chunk_size in (1, 13, 100, 10**6):
                got = list(trace.stream.chunks(chunk_size))
                want = list(mem.stream.chunks(chunk_size))
                assert len(got) == len(want)
                for g, w in zip(got, want):
                    assert_streams_equal(g, w)

    def test_empty_stream_round_trips(self, tmp_path):
        path = write_stream(tmp_path / "e.trace",
                            AccessStream.from_arrays([], 64, []))
        with TraceReader(path) as reader:
            assert len(reader.full_stream()) == 0
            assert reader.verify()

    def test_writer_abort_leaves_no_file(self, tmp_path):
        target = tmp_path / "aborted.trace"
        with pytest.raises(RuntimeError):
            with TraceWriter(target) as writer:
                writer.append_arrays([0, 64], 64, [False, True])
                raise RuntimeError("boom")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # temp cleaned up too

    def test_atomic_overwrite_replaces_whole_file(self, tmp_path):
        path = tmp_path / "t.trace"
        write_stream(path, AccessStream.from_arrays([0], 64, [True]))
        first = read_trace_footer(path)["content_hash"]
        write_stream(path, AccessStream.from_arrays([64, 128], 64,
                                                    [False, False]))
        assert read_trace_footer(path)["content_hash"] != first
        assert len(load_trace_file(path)) == 2


# ---------------------------------------------------------------------------
# Corruption rejection
# ---------------------------------------------------------------------------


def _flip_byte(path: Path, offset: int) -> None:
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(data)


class TestCorruptionRejection:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        return build_trace_file("seqRd", tmp_path / "s.trace", scale=SCALE,
                                chunk_accesses=128)

    def test_truncated_tail_rejected(self, trace_path):
        data = trace_path.read_bytes()
        trace_path.write_bytes(data[:-8])
        with pytest.raises(TraceFormatError, match="end magic"):
            read_trace_footer(trace_path)

    def test_truncated_mid_file_rejected(self, trace_path):
        data = trace_path.read_bytes()
        trace_path.write_bytes(data[:len(data) // 2])
        with pytest.raises(TraceFormatError):
            read_trace_footer(trace_path)

    def test_bad_magic_rejected(self, trace_path):
        _flip_byte(trace_path, 0)
        with pytest.raises(TraceFormatError, match="magic"):
            read_trace_footer(trace_path)

    def test_torn_footer_rejected(self, trace_path):
        size = trace_path.stat().st_size
        _flip_byte(trace_path, size - 20)  # inside the footer JSON
        with pytest.raises(TraceFormatError):
            read_trace_footer(trace_path)

    def test_checksum_mismatch_rejected_by_verify(self, trace_path):
        _flip_byte(trace_path, HEADER_SIZE + 3)  # first chunk's payload
        with TraceReader(trace_path) as reader:
            with pytest.raises(TraceFormatError, match="mismatch"):
                reader.verify()

    def test_checksum_mismatch_rejected_on_read(self, trace_path):
        _flip_byte(trace_path, HEADER_SIZE + 3)
        with TraceReader(trace_path, verify_chunks=True) as reader:
            with pytest.raises(TraceFormatError, match="checksum"):
                reader.window(0, 10)

    def test_compressed_chunk_always_checked(self, tmp_path):
        path = build_trace_file("seqRd", tmp_path / "z.trace", scale=SCALE,
                                compression="zlib")
        footer = read_trace_footer(path)
        offset, _accesses, stored, _crc = footer["chunks"][0]
        _flip_byte(path, offset + stored // 2)
        with TraceReader(path) as reader:
            with pytest.raises(TraceFormatError):
                reader.window(0, 10)

    def test_chunk_out_of_bounds_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        footer = {
            "schema": "repro.trace/1", "length": 1, "compression": "none",
            "chunk_accesses": 1, "chunks": [[HEADER_SIZE, 1, 10**6, 0]],
            "content_hash": "sha256:0", "write_count": 0,
            "min_address": 0, "max_end": 64,
            "meta": {"name": "x"},
        }
        import json
        body = json.dumps(footer).encode()
        path.write_bytes(MAGIC + b"\x00\x00" + body
                         + struct.pack("<Q8s", len(body), END_MAGIC))
        with pytest.raises(TraceFormatError, match="outside the data"):
            read_trace_footer(path)


# ---------------------------------------------------------------------------
# Streaming generation (satellite: generators emit chunk-wise)
# ---------------------------------------------------------------------------


GENERATORS = {
    "sequential": lambda: SequentialPattern(MB(1), 64, seed=3, start_slot=9),
    "random": lambda: RandomPattern(MB(1), 64, seed=3),
    "zipfian": lambda: ZipfianPattern(MB(1), 64, seed=3, run_length=16),
    "hotspot": lambda: HotspotPattern(MB(1), 64, seed=3, run_length=16),
    "hotspot-unit-runs": lambda: HotspotPattern(MB(1), 64, seed=3),
    "strided": lambda: StridedPattern(MB(1), 64, seed=3, stride_slots=17),
}


class TestStreamingGeneration:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    @pytest.mark.parametrize("chunk_accesses", [1, 7, 64, 1000, 10**6])
    def test_stream_chunks_bit_equal_to_one_shot(self, name, chunk_accesses):
        one_shot = GENERATORS[name]().stream(777, write_fraction=0.3)
        chunked = list(GENERATORS[name]().stream_chunks(
            777, write_fraction=0.3, chunk_accesses=chunk_accesses))
        assert sum(len(c) for c in chunked) == 777
        rebuilt = AccessStream(
            np.concatenate([c.addresses for c in chunked]),
            np.concatenate([c.sizes for c in chunked]),
            np.concatenate([c.writes for c in chunked]))
        assert_streams_equal(rebuilt, one_shot)

    def test_build_trace_file_matches_in_memory_for_all_workloads(
            self, tmp_path):
        from repro.workloads.registry import all_workload_names
        for name in all_workload_names():
            path = build_trace_file(name, tmp_path / f"{name}.trace",
                                    scale=SCALE, chunk_accesses=113)
            mem = build_trace(name, SCALE)
            disk = load_trace_file(path)
            assert disk.stream == mem.stream, name
            assert disk.dataset_bytes == mem.dataset_bytes
            assert disk.total_instructions == mem.total_instructions
            assert disk.accesses_per_operation == mem.accesses_per_operation


# ---------------------------------------------------------------------------
# FileAccessStream behaviour
# ---------------------------------------------------------------------------


class TestFileAccessStream:
    @pytest.fixture()
    def pair(self, tmp_path):
        mem = build_trace("BFS", SCALE)
        path = build_trace_file("BFS", tmp_path / "b.trace", scale=SCALE,
                                chunk_accesses=128)
        return mem.stream, load_trace_file(path).stream

    def test_slicing_stays_lazy_and_exact(self, pair):
        mem, disk = pair
        window = disk[100:300]
        assert isinstance(window, FileAccessStream)
        assert_streams_equal(window, mem[100:300])
        assert window[25:50] == mem[125:150]
        assert disk[7] == mem[7]
        assert disk[-1] == mem[len(mem) - 1]

    def test_iteration_and_eq(self, pair):
        mem, disk = pair
        assert list(disk[:40]) == list(mem[:40])
        assert disk == mem and mem == disk
        assert not (disk[1:] == mem[:-1])

    def test_stats_use_footer_for_full_window(self, pair):
        mem, disk = pair
        assert disk.write_count == mem.write_count
        assert disk.read_count == mem.read_count
        assert disk.touched_bytes() == mem.touched_bytes()
        assert disk[10:90].write_count == mem[10:90].write_count
        assert disk[10:90].touched_bytes() == mem[10:90].touched_bytes()

    def test_batched_replay_never_materialises_columns(self, tmp_path,
                                                       monkeypatch):
        """The bounded-RSS guarantee: the batched replay path must drive
        ``chunks()`` only — touching a full-window column accessor means a
        full-trace materialisation snuck back in."""
        path = build_trace_file("seqRd", tmp_path / "s.trace", scale=SCALE,
                                chunk_accesses=128)
        trace = load_trace_file(path)

        def boom(self):
            raise AssertionError("full-column materialisation on the "
                                 "batched replay path")

        monkeypatch.setattr(FileAccessStream, "_columns", boom)
        config = scale_system_config(default_config(), SCALE)
        result = create_platform("hams-TE", config).run(trace)
        assert result.operations > 0

    def test_scalar_replay_matches_batched(self, tmp_path):
        path = build_trace_file("seqRd", tmp_path / "s.trace", scale=SCALE)
        config = scale_system_config(default_config(), SCALE)
        trace = load_trace_file(path)
        batched = create_platform("mmap", config).run(trace)
        scalar = create_platform("mmap", config).run(
            load_trace_file(path), execution="scalar")
        assert dataclasses.asdict(batched) == dataclasses.asdict(scalar)


# ---------------------------------------------------------------------------
# Golden parity: file-backed replay across the full platform registry
# ---------------------------------------------------------------------------


class TestGoldenReplayParity:
    def test_all_platforms_bit_identical_to_in_memory(self, tmp_path):
        config = scale_system_config(default_config(), SCALE)
        mem = build_trace("rndWr", SCALE)
        path = build_trace_file("rndWr", tmp_path / "r.trace", scale=SCALE,
                                chunk_accesses=100)
        platforms = available_platforms()
        assert len(platforms) == 17
        for name in platforms:
            expected = create_platform(name, config).run(mem)
            actual = create_platform(name, config).run(
                load_trace_file(path))
            assert dataclasses.asdict(actual) == dataclasses.asdict(
                expected), name


# ---------------------------------------------------------------------------
# Cache keys, labels and shard-planning cost
# ---------------------------------------------------------------------------


class TestRunnerIntegration:
    def test_cache_key_identical_for_provenance_matched_file(self, tmp_path):
        config = scale_system_config(default_config(), SCALE)
        path = build_trace_file("seqRd", tmp_path / "s.trace", scale=SCALE)
        in_memory = run_cache_key(
            RunSpec(platform="mmap", workload="seqRd"), config, SCALE)
        file_backed = run_cache_key(
            RunSpec(platform="mmap", workload=trace_source_name(path)),
            config, SCALE)
        assert in_memory == file_backed

    def test_cache_key_content_addressed_on_scale_mismatch(self, tmp_path):
        config = scale_system_config(default_config(), SCALE)
        path = build_trace_file("seqRd", tmp_path / "s.trace", scale=SCALE)
        spec = RunSpec(platform="mmap", workload=trace_source_name(path))
        other_scale = dataclasses.replace(SCALE, seed=SCALE.seed + 1)
        mismatched = run_cache_key(spec, config, other_scale)
        in_memory = run_cache_key(
            RunSpec(platform="mmap", workload="seqRd"), config, other_scale)
        assert mismatched != in_memory

    def test_cache_key_invariant_under_rechunk_and_recompress(self, tmp_path):
        stream = AccessStream.from_arrays([0, 64, 4096], 64,
                                          [True, False, True])
        a = write_stream(tmp_path / "a.trace", stream, chunk_accesses=1)
        b = write_stream(tmp_path / "b.trace", stream, chunk_accesses=8,
                         compression="zlib")
        config = scale_system_config(default_config(), SCALE)
        key_a = run_cache_key(
            RunSpec(platform="mmap", workload=trace_source_name(a)),
            config, SCALE)
        key_b = run_cache_key(
            RunSpec(platform="mmap", workload=trace_source_name(b)),
            config, SCALE)
        assert key_a == key_b  # identity is content, never path or layout

    def test_matrix_specs_label_trace_workloads(self, tmp_path):
        path = build_trace_file("update", tmp_path / "u.trace", scale=SCALE)
        specs = matrix_specs(["mmap", "oracle"],
                             [trace_source_name(path), "seqRd"])
        assert specs[0].result_key == ("mmap", "update")
        assert specs[1].result_key == ("oracle", "update")
        assert specs[2].result_key == ("mmap", "seqRd")
        # the label is presentation only: canonical() still hashes the path
        assert specs[0].canonical()["workload"].startswith("trace:")
        round_tripped = RunSpec.from_dict(specs[0].to_dict())
        assert round_tripped == specs[0]

    def test_estimate_spec_cost_reads_footer_length(self, tmp_path):
        path = build_trace_file("update", tmp_path / "u.trace", scale=SCALE)
        spec = RunSpec(platform="mmap", workload=trace_source_name(path))
        tiny = dataclasses.replace(SCALE, min_accesses=1, max_accesses=2)
        # the file fixes its length; the estimating scale's clamps don't
        assert estimate_spec_cost(spec, tiny) == len(build_trace(
            "update", SCALE))

    def test_build_trace_accepts_trace_sources(self, tmp_path):
        path = build_trace_file("KMN", tmp_path / "k.trace", scale=SCALE)
        trace = build_trace(trace_source_name(path), SCALE)
        assert isinstance(trace.stream, FileAccessStream)
        assert trace.name == "KMN"
        override = build_trace(trace_source_name(path), SCALE,
                               dataset_bytes_override=MB(64))
        assert override.dataset_bytes == MB(64)


# ---------------------------------------------------------------------------
# Importers
# ---------------------------------------------------------------------------


class TestImporters:
    def test_csv_round_trip(self, tmp_path):
        source = tmp_path / "log.csv"
        source.write_text("address,size,write\n"
                          "# comment\n"
                          "0x1000,64,w\n"
                          "8192,,r\n"
                          "12288\n"
                          "16384,128,1\n")
        path = import_csv(source, tmp_path / "log.trace", default_size=32,
                          chunk_accesses=2)
        stream = load_trace_file(path).stream
        assert stream.addresses.tolist() == [4096, 8192, 12288, 16384]
        assert stream.sizes.tolist() == [64, 32, 32, 128]
        assert stream.writes.tolist() == [True, False, False, True]
        footer = read_trace_footer(path)
        assert footer["meta"]["suite"] == "imported"
        assert footer["provenance"] is None

    def test_csv_bad_row_rejected(self, tmp_path):
        source = tmp_path / "log.csv"
        source.write_text("4096,64,w\nnot-an-address,64,r\n")
        with pytest.raises(TraceFormatError, match="bad address"):
            import_csv(source, tmp_path / "log.trace")
        assert not (tmp_path / "log.trace").exists()  # aborted atomically

    def test_binary_addr64_round_trip(self, tmp_path):
        addresses = np.arange(0, 640, 64, dtype="<u8")
        source = tmp_path / "a.bin"
        source.write_bytes(addresses.tobytes())
        path = import_binary(source, tmp_path / "a.trace", layout="addr64",
                             access_size=128, chunk_accesses=3)
        stream = load_trace_file(path).stream
        assert stream.addresses.tolist() == addresses.tolist()
        assert set(stream.sizes.tolist()) == {128}
        assert not stream.writes.any()

    def test_binary_records_round_trip(self, tmp_path):
        records = [(0, 64, 1), (4096, 128, 0), (8192, 32, 1)]
        source = tmp_path / "r.bin"
        source.write_bytes(b"".join(
            struct.pack("<QQB", *record) for record in records))
        path = import_binary(source, tmp_path / "r.trace", layout="records",
                             chunk_accesses=2, compression="zlib")
        stream = load_trace_file(path).stream
        assert stream.addresses.tolist() == [0, 4096, 8192]
        assert stream.sizes.tolist() == [64, 128, 32]
        assert stream.writes.tolist() == [True, False, True]

    def test_binary_truncated_rejected(self, tmp_path):
        source = tmp_path / "t.bin"
        source.write_bytes(b"\x00" * 12)  # not a multiple of 8
        with pytest.raises(TraceFormatError, match="truncated"):
            import_binary(source, tmp_path / "t.trace", layout="addr64")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestTraceCLI:
    def test_build_info_verify_run(self, tmp_path, capsys):
        trace = tmp_path / "seqRd.trace"
        assert repro_main(["trace", "build", str(trace), "--workload",
                           "seqRd", "--smoke", "--accesses", "300"]) == 0
        assert read_trace_footer(trace)["length"] == 300
        assert repro_main(["trace", "info", str(trace)]) == 0
        assert "provenance" in capsys.readouterr().out
        assert repro_main(["trace", "verify", str(trace)]) == 0

    def test_verify_fails_on_corruption(self, tmp_path, capsys):
        trace = tmp_path / "s.trace"
        build_trace_file("seqRd", trace, scale=SCALE)
        _flip_byte(trace, HEADER_SIZE + 1)
        assert repro_main(["trace", "verify", str(trace)]) == 1

    def test_import_csv_cli(self, tmp_path, capsys):
        source = tmp_path / "in.csv"
        source.write_text("4096,64,w\n8192,64,r\n")
        out = tmp_path / "in.trace"
        assert repro_main(["trace", "import", str(source), str(out),
                           "--format", "csv"]) == 0
        assert read_trace_footer(out)["length"] == 2

    def test_run_replays_trace_workload(self, tmp_path, capsys):
        trace = tmp_path / "seqRd.trace"
        build_trace_file("seqRd", trace, scale=SCALE)
        code = repro_main([
            "run", "--smoke", "--no-cache", "--executor", "serial",
            "--platforms", "mmap", "--workloads", f"trace:{trace}",
            "--output-dir", str(tmp_path / "out"), "--quiet"])
        assert code == 0
        import json
        artifact = json.loads(
            (tmp_path / "out" / "custom.json").read_text())
        assert artifact["runs"][0]["workload_key"] == "seqRd"
        assert artifact["runs"][0]["result"]["workload"] == "seqRd"
