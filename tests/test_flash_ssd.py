"""Full SSD device model: request servicing, buffering, FUA, presets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import FlashGeometry, SSDConfig
from repro.flash.ssd import IORequest, SSD, make_ssd
from repro.units import KB, MB, us


def small_ssd(buffer_enabled: bool = True, name: str = "ull-flash") -> SSD:
    geometry = FlashGeometry(channels=4, packages_per_channel=1,
                             dies_per_package=2, planes_per_die=1,
                             blocks_per_plane=32, pages_per_block=32)
    config = SSDConfig(name=name, geometry=geometry,
                       dram_buffer_bytes=MB(1),
                       dram_buffer_enabled=buffer_enabled)
    return SSD(config)


class TestRequestValidation:
    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            IORequest(is_write=False, byte_offset=-1, size_bytes=4096,
                      submit_ns=0.0)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            IORequest(is_write=False, byte_offset=0, size_bytes=0,
                      submit_ns=0.0)


class TestReads:
    def test_unwritten_page_read_is_cheap(self):
        ssd = small_ssd()
        result = ssd.read(0, KB(4), at_ns=0.0)
        assert result.flash_reads == 0
        assert result.latency_ns < us(10)

    def test_read_after_precondition_touches_flash(self):
        ssd = small_ssd()
        ssd.precondition(0, 16)
        result = ssd.read(0, KB(4), at_ns=0.0)
        assert result.flash_reads == 1
        assert result.latency_ns >= us(3)

    def test_second_read_hits_internal_buffer(self):
        ssd = small_ssd()
        ssd.precondition(0, 16)
        ssd.read(0, KB(4), at_ns=0.0)
        second = ssd.read(0, KB(4), at_ns=us(100))
        assert second.buffer_hits == 1
        assert second.flash_reads == 0

    def test_large_read_splits_into_pages(self):
        ssd = small_ssd()
        ssd.precondition(0, 16)
        result = ssd.read(0, KB(16), at_ns=0.0)
        assert result.flash_reads == 4


class TestWrites:
    def test_buffered_write_is_fast(self):
        ssd = small_ssd()
        result = ssd.write(0, KB(4), at_ns=0.0)
        assert result.flash_programs == 0
        assert result.latency_ns < us(10)

    def test_fua_write_reaches_flash(self):
        ssd = small_ssd()
        result = ssd.write(0, KB(4), at_ns=0.0, fua=True)
        assert result.flash_programs == 1
        assert result.latency_ns >= us(100)

    def test_write_without_buffer_reaches_flash(self):
        ssd = small_ssd(buffer_enabled=False)
        result = ssd.write(0, KB(4), at_ns=0.0)
        assert result.flash_programs == 1

    def test_buffer_evictions_program_flash(self):
        ssd = small_ssd()
        pages_in_buffer = ssd.buffer.capacity_pages
        programs_before = ssd.fil.page_programs
        for index in range(pages_in_buffer + 4):
            ssd.write(index * KB(4), KB(4), at_ns=float(index) * 1000)
        assert ssd.fil.page_programs > programs_before


class TestLatencyCharacteristics:
    def test_read_latency_close_to_znand(self):
        """4 KB read ~= 3 us array + transfer + firmware (Figure 5a shape)."""
        ssd = small_ssd()
        ssd.precondition(0, 1024)
        result = ssd.read(KB(40), KB(4), at_ns=0.0)
        assert us(3) <= result.latency_ns <= us(15)

    def test_writes_slower_than_reads_on_flash(self):
        ssd = small_ssd(buffer_enabled=False)
        ssd.precondition(0, 64)
        read = ssd.read(0, KB(4), at_ns=0.0)
        write = ssd.write(KB(256), KB(4), at_ns=us(1000))
        assert write.device_time_ns > read.device_time_ns


class TestPrecondition:
    def test_precondition_maps_range(self):
        ssd = small_ssd()
        ssd.precondition(0, 32)
        assert ssd.ftl.mapped_pages == 32

    def test_precondition_beyond_capacity_rejected(self):
        ssd = small_ssd()
        with pytest.raises(ValueError):
            ssd.precondition(0, ssd.logical_pages + 1)


class TestSupercapFlush:
    def test_flush_programs_dirty_pages(self):
        ssd = small_ssd()
        ssd.write(0, KB(4), at_ns=0.0)
        ssd.write(KB(4), KB(4), at_ns=100.0)
        programs_before = ssd.fil.page_programs
        finish = ssd.supercap_flush(at_ns=1000.0)
        assert ssd.fil.page_programs == programs_before + 2
        assert finish > 1000.0

    def test_flush_with_clean_buffer_is_noop(self):
        ssd = small_ssd()
        assert ssd.supercap_flush(at_ns=5.0) == 5.0


class TestQueueAdmission:
    def test_outstanding_limit_delays_admission(self):
        geometry = FlashGeometry(channels=1, packages_per_channel=1,
                                 dies_per_package=1, planes_per_die=1,
                                 blocks_per_plane=32, pages_per_block=32)
        config = SSDConfig(name="tiny", geometry=geometry,
                           dram_buffer_enabled=False, max_outstanding=1,
                           split_channels=False)
        ssd = SSD(config)
        ssd.precondition(0, 64)
        first = ssd.read(0, KB(4), at_ns=0.0)
        second = ssd.read(KB(8), KB(4), at_ns=0.0)
        assert second.start_ns >= first.finish_ns


class TestPresets:
    def test_make_ssd_presets(self):
        for kind in ("ull-flash", "nvme-ssd", "sata-ssd"):
            ssd = make_ssd(kind, capacity_bytes=MB(256))
            assert ssd.config.name == kind

    def test_make_ssd_unknown_kind(self):
        with pytest.raises(ValueError):
            make_ssd("floppy")

    def test_ull_flash_faster_than_nvme_ssd(self):
        ull = make_ssd("ull-flash", capacity_bytes=MB(256))
        nvme = make_ssd("nvme-ssd", capacity_bytes=MB(256))
        ull.precondition(0, 64)
        nvme.precondition(0, 64)
        ull_read = ull.read(0, KB(4), at_ns=0.0)
        nvme_read = nvme.read(0, KB(4), at_ns=0.0)
        assert ull_read.latency_ns < nvme_read.latency_ns


class TestStatisticsAndProperties:
    def test_statistics_keys(self):
        ssd = small_ssd()
        ssd.write(0, KB(4), at_ns=0.0)
        stats = ssd.statistics()
        assert stats["flash_requests_served"] == 1
        assert stats["flash_bytes_written"] == KB(4)
        assert "flash_ftl_write_amplification" in stats
        # The unified fold puts every layer under one stable namespace.
        assert all(key.startswith("flash_") for key in stats)
        for key in ("flash_buffer_read_hits", "flash_page_programs",
                    "flash_channel_bytes_moved", "flash_ftl_host_writes"):
            assert key in stats

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=63),
                              st.integers(min_value=1, max_value=4)),
                    min_size=1, max_size=40))
    def test_completion_never_precedes_submission(self, operations):
        ssd = small_ssd()
        ssd.precondition(0, 128)
        now = 0.0
        for is_write, page, pages in operations:
            result = ssd.submit(IORequest(is_write=is_write,
                                          byte_offset=page * KB(4),
                                          size_bytes=pages * KB(4),
                                          submit_ns=now))
            assert result.finish_ns >= result.request.submit_ns
            assert result.start_ns >= result.request.submit_ns
            now += 500.0
