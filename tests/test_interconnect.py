"""Interconnect models: PCIe, SATA, DDR4 bus and the lock register."""

import pytest

from repro.config import DDRConfig, PCIeConfig, SATAConfig
from repro.interconnect.ddr_bus import DDR4Bus, LockRegister
from repro.interconnect.pcie import PCIeLink
from repro.interconnect.sata import SATALink
from repro.units import KB, MB


class TestPCIeLink:
    def test_bandwidth_is_lanes_times_lane_rate(self):
        link = PCIeLink(PCIeConfig())
        assert link.bandwidth_bytes_per_ns == pytest.approx(
            4 * PCIeConfig().per_lane_bw_bytes_per_ns)

    def test_transfer_time_scales_linearly(self):
        link = PCIeLink(PCIeConfig())
        small = link.raw_transfer_time(KB(4))
        large = link.raw_transfer_time(KB(128))
        assert large == pytest.approx(32 * small)

    def test_packet_overhead_grows_with_packets(self):
        link = PCIeLink(PCIeConfig())
        assert link.per_transfer_overhead(KB(64)) > link.per_transfer_overhead(64)

    def test_transfers_serialise(self):
        link = PCIeLink(PCIeConfig())
        first = link.transfer(KB(128), 0.0)
        second = link.transfer(KB(4), 0.0)
        assert second.start_ns >= first.finish_ns

    def test_statistics_accumulate(self):
        link = PCIeLink(PCIeConfig())
        link.transfer(KB(4), 0.0)
        link.transfer(KB(4), 1000.0)
        stats = link.statistics()
        assert stats["bytes_transferred"] == 2 * KB(4)
        assert stats["transfers"] == 2

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            PCIeLink(PCIeConfig()).transfer(0, 0.0)

    def test_reset(self):
        link = PCIeLink(PCIeConfig())
        link.transfer(KB(4), 0.0)
        link.reset()
        assert link.bytes_transferred == 0


class TestSATALink:
    def test_sata_slower_than_pcie(self):
        sata = SATALink(SATAConfig())
        pcie = PCIeLink(PCIeConfig())
        assert sata.raw_transfer_time(MB(1)) > pcie.raw_transfer_time(MB(1))

    def test_command_overhead_is_flat(self):
        sata = SATALink(SATAConfig())
        assert sata.per_transfer_overhead(64) == sata.per_transfer_overhead(MB(1))


class TestLockRegister:
    def test_uncontended_acquire(self):
        lock = LockRegister(toggle_ns=5.0)
        granted = lock.acquire(100.0)
        assert granted == 105.0
        assert lock.held

    def test_release_then_acquire(self):
        lock = LockRegister(toggle_ns=5.0)
        lock.acquire(0.0)
        lock.release(50.0)
        assert not lock.held
        granted = lock.acquire(100.0)
        assert granted == 105.0
        assert lock.contended_acquisitions == 0

    def test_contended_acquire_waits_for_release(self):
        lock = LockRegister(toggle_ns=5.0)
        lock.acquire(0.0)
        lock.release(200.0)
        lock.acquire(0.0)  # arrives while the release is still in flight
        # Second acquire happens after the first release lands.
        assert lock.acquisitions == 2

    def test_contention_is_counted(self):
        lock = LockRegister(toggle_ns=5.0)
        lock.acquire(0.0)
        # Another acquire while held and never released yet.
        lock.release(1000.0)
        lock.acquire(500.0)
        assert lock.contended_acquisitions == 1

    def test_statistics(self):
        lock = LockRegister(toggle_ns=5.0)
        lock.acquire(0.0)
        lock.release(100.0)
        stats = lock.statistics()
        assert stats["acquisitions"] == 1
        assert stats["total_held_ns"] >= 90.0


class TestDDR4Bus:
    def test_faster_than_pcie(self):
        bus = DDR4Bus(DDRConfig())
        pcie = PCIeLink(PCIeConfig())
        assert bus.raw_transfer_time(KB(128)) < pcie.raw_transfer_time(KB(128))

    def test_register_command_is_64_bytes(self):
        bus = DDR4Bus(DDRConfig())
        record = bus.send_register_command(0.0)
        assert record.size_bytes == 64
        assert bus.register_commands_sent == 1

    def test_dma_transfer_holds_lock(self):
        bus = DDR4Bus(DDRConfig())
        record = bus.dma_transfer(KB(128), 0.0)
        assert bus.lock.acquisitions == 1
        assert not bus.lock.held
        assert record.finish_ns > record.start_ns

    def test_dma_transfers_serialise_through_lock(self):
        bus = DDR4Bus(DDRConfig())
        first = bus.dma_transfer(KB(128), 0.0)
        second = bus.dma_transfer(KB(128), 0.0)
        assert second.start_ns >= first.finish_ns
