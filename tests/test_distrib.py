"""Tests for the repro.distrib sharded execution tier.

The load-bearing properties, in order of importance:

1. **Merge exactness** — for any shard count and any shard execution
   order, plan + work + merge produces runs bit-identical (as canonically
   serialised) to an unsharded ``ParallelExperimentRunner.collect`` over
   the same specs.
2. **Resume** — a worker killed mid-shard and restarted resumes from the
   shared run cache: finished runs are not recomputed, and the shard
   result neither drops nor duplicates runs.
3. **Coordination safety** — the spool's claim-by-rename hands each shard
   to exactly one worker, and the coordinator refuses to merge shards with
   mismatched provenance or an incomplete/duplicated shard set.
"""

from __future__ import annotations

import json

import pytest

from repro.distrib import (
    SHARD_MANIFEST_SCHEMA,
    SHARD_RESULT_SCHEMA,
    ShardSpool,
    estimate_spec_cost,
    execute_shard,
    execute_shard_file,
    experiment_id_of,
    merge_shards,
    partition_bounds,
    partition_bounds_by_cost,
    plan_shards,
    run_sharded_specs,
    validate_manifest,
    work_spool,
)
from repro.distrib import spool as spool_module
from repro.runner import parallel as parallel_module
from repro.runner.artifacts import (
    RunCache,
    experiment_to_artifact,
    run_cache_key,
)
from repro.runner.parallel import ParallelExperimentRunner
from repro.runner.specs import RunSpec, matrix_specs
from repro.units import KB
from repro.workloads.registry import ExperimentScale

#: Small enough for sub-second shards, large enough for real platform work.
TINY = ExperimentScale(capacity_scale=1 / 512, min_accesses=120,
                       max_accesses=240)
PLATFORMS = ["mmap", "hams-TE", "oracle"]
WORKLOADS = ["seqRd", "update"]


def tiny_runner(**kwargs) -> ParallelExperimentRunner:
    return ParallelExperimentRunner(TINY, workers=1, **kwargs)


def canonical_runs(experiment, config) -> str:
    """The artifact 'runs' array exactly as it would be written to disk."""
    return json.dumps(experiment_to_artifact("x", experiment, config)["runs"],
                      sort_keys=True)


class TestPartition:
    def test_balanced_contiguous(self):
        assert partition_bounds(6, 2) == [(0, 3), (3, 6)]
        assert partition_bounds(7, 3) == [(0, 3), (3, 5), (5, 7)]
        assert partition_bounds(2, 5) == [(0, 1), (1, 2), (2, 2), (2, 2),
                                          (2, 2)]

    def test_sizes_differ_by_at_most_one(self):
        for total in range(0, 20):
            for count in range(1, 8):
                sizes = [end - start
                         for start, end in partition_bounds(total, count)]
                assert sum(sizes) == total
                assert max(sizes) - min(sizes) <= 1

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="shard_count"):
            partition_bounds(4, 0)


class TestCostPartition:
    """Satellite: `shard plan --balance cost` weighs specs, not counts."""

    def test_contiguous_and_complete(self):
        for costs in ([5, 5, 5, 5], [100, 1, 1, 1, 1, 1], [1, 1, 100],
                      [3, 7, 2, 9, 4, 4, 8], []):
            for count in range(1, 6):
                bounds = partition_bounds_by_cost(costs, count)
                assert len(bounds) == count
                assert bounds[0][0] == 0 and bounds[-1][1] == len(costs)
                for (_, end), (start, _) in zip(bounds, bounds[1:]):
                    assert end == start

    def test_equal_costs_reduce_to_near_even_counts(self):
        sizes = [end - start
                 for start, end in partition_bounds_by_cost([7] * 10, 3)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_skewed_costs_balance_better_than_counts(self):
        # One expensive spec followed by many cheap ones: a count split
        # puts the expensive one *plus* half the cheap ones on shard 0.
        costs = [100] + [10] * 10
        by_cost = partition_bounds_by_cost(costs, 2)
        by_count = partition_bounds(len(costs), 2)

        def imbalance(bounds):
            totals = [sum(costs[start:end]) for start, end in bounds]
            return max(totals) - min(totals)

        assert imbalance(by_cost) < imbalance(by_count)

    def test_zero_total_cost_falls_back_to_counts(self):
        assert partition_bounds_by_cost([0, 0, 0, 0], 2) == \
            partition_bounds(4, 2)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="shard_count"):
            partition_bounds_by_cost([1, 2], 0)

    def test_estimate_tracks_scale_and_workload(self):
        spec = RunSpec("mmap", "seqRd")
        cost = estimate_spec_cost(spec, TINY)
        assert TINY.min_accesses <= cost <= TINY.max_accesses
        wider = ExperimentScale(capacity_scale=1 / 512, min_accesses=1,
                                max_accesses=10 ** 9)
        # Unclamped, the update workload (more instructions in Table III
        # than the microbenchmarks) must cost more than seqRd.
        assert estimate_spec_cost(RunSpec("oracle", "update"), wider) > \
            estimate_spec_cost(RunSpec("oracle", "seqRd"), wider)

    def test_plan_rejects_unknown_balance(self):
        runner = tiny_runner()
        with pytest.raises(ValueError, match="balance"):
            plan_shards("exp", matrix_specs(["mmap"], ["seqRd"]),
                        runner.config, TINY, 1, balance="fastest")

    def test_balance_modes_get_distinct_experiment_ids(self):
        runner = tiny_runner()
        specs = matrix_specs(PLATFORMS, WORKLOADS)
        by_count = plan_shards("exp", specs, runner.config, TINY, 2)
        by_cost = plan_shards("exp", specs, runner.config, TINY, 2,
                              balance="cost")
        # Different partitions must never alias into one mergeable plan.
        assert by_count[0]["experiment_id"] != by_cost[0]["experiment_id"]
        assert by_cost[0]["balance"] == "cost"

    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_cost_balanced_merge_is_golden(self, shards):
        """Merge exactness holds for the cost partition, like for count."""
        runner = tiny_runner()
        specs = matrix_specs(PLATFORMS, WORKLOADS)
        expected = canonical_runs(runner.collect(specs), runner.config)
        manifests = plan_shards("golden-cost", specs, runner.config, TINY,
                                shards, balance="cost")
        indices = [entry["index"] for manifest in manifests
                   for entry in manifest["specs"]]
        assert indices == list(range(len(specs)))
        results = [execute_shard(manifest, workers=1)
                   for manifest in manifests]
        merged = merge_shards(results)
        assert canonical_runs(merged.result, runner.config) == expected


class TestManifests:
    def test_plan_layout(self):
        runner = tiny_runner()
        specs = matrix_specs(PLATFORMS, WORKLOADS)
        manifests = plan_shards("exp", specs, runner.config, TINY, 2)
        assert len(manifests) == 2
        for shard_index, manifest in enumerate(manifests):
            validate_manifest(manifest)
            assert manifest["schema"] == SHARD_MANIFEST_SCHEMA
            assert manifest["shard_index"] == shard_index
            assert manifest["shard_count"] == 2
            assert manifest["experiment"] == "exp"
        indices = [entry["index"]
                   for manifest in manifests
                   for entry in manifest["specs"]]
        assert indices == list(range(len(specs)))
        for manifest in manifests:
            for entry in manifest["specs"]:
                spec = RunSpec.from_dict(entry["spec"])
                assert entry["key"] == run_cache_key(spec, runner.config,
                                                     TINY)

    def test_spec_round_trip_preserves_label_and_overrides(self):
        spec = RunSpec("hams-TE", "seqRd", dataset_bytes_override=1 << 22,
                       config_overrides={"hams": {"mos_page_bytes": KB(4)}},
                       platform_kwargs={"capacity_bytes": 1 << 26},
                       label="4KB")
        rebuilt = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.result_key == ("4KB", "seqRd")

    def test_experiment_id_digests_the_whole_plan(self):
        runner = tiny_runner()
        specs = matrix_specs(PLATFORMS, WORKLOADS)
        base = experiment_id_of("exp", specs, runner.config, TINY, 2)
        assert base == experiment_id_of("exp", specs, runner.config, TINY, 2)
        assert base != experiment_id_of("other", specs, runner.config,
                                        TINY, 2)
        assert base != experiment_id_of("exp", specs[:-1], runner.config,
                                        TINY, 2)
        assert base != experiment_id_of("exp", specs, runner.config, TINY, 3)
        other_scale = ExperimentScale(capacity_scale=1 / 512,
                                      min_accesses=120, max_accesses=240,
                                      seed=7)
        assert base != experiment_id_of("exp", specs, runner.config,
                                        other_scale, 2)

    def test_validate_rejects_bad_payloads(self):
        with pytest.raises(ValueError, match="unsupported shard manifest"):
            validate_manifest({"schema": "nope/1"})
        runner = tiny_runner()
        manifest = plan_shards("exp", matrix_specs(["mmap"], ["seqRd"]),
                               runner.config, TINY, 1)[0]
        broken = dict(manifest)
        del broken["config_hash"]
        with pytest.raises(ValueError, match="missing fields"):
            validate_manifest(broken)
        out_of_range = dict(manifest)
        out_of_range["shard_index"] = 5
        with pytest.raises(ValueError, match="out of range"):
            validate_manifest(out_of_range)


class TestMergeExactness:
    """Acceptance criterion: sharded == unsharded, bit for bit."""

    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_golden_against_unsharded(self, shards):
        runner = tiny_runner()
        specs = matrix_specs(PLATFORMS, WORKLOADS)
        expected = canonical_runs(runner.collect(specs), runner.config)
        merged = run_sharded_specs("golden", specs, runner.config, TINY,
                                   shards, workers=1)
        assert canonical_runs(merged, runner.config) == expected

    def test_shard_execution_order_is_irrelevant(self, tmp_path):
        runner = tiny_runner()
        specs = matrix_specs(PLATFORMS, WORKLOADS)
        expected = canonical_runs(runner.collect(specs), runner.config)
        manifests = plan_shards("golden", specs, runner.config, TINY, 3)
        # Execute the shards back to front, merge the results shuffled.
        results = [execute_shard(manifest, cache_dir=tmp_path / "cache",
                                 workers=1)
                   for manifest in reversed(manifests)]
        merged = merge_shards([results[1], results[0], results[2]])
        assert canonical_runs(merged.result, runner.config) == expected

    def test_sweep_labels_survive_sharding(self):
        runner = tiny_runner()
        specs = [RunSpec("hams-TE", "seqRd",
                         config_overrides={"hams": {"mos_page_bytes": size}},
                         label=label)
                 for size, label in ((KB(4), "4KB"), (KB(128), "128KB"))]
        expected = canonical_runs(runner.collect(specs), runner.config)
        merged = run_sharded_specs("sweep", specs, runner.config, TINY, 2,
                                   workers=1)
        assert canonical_runs(merged, runner.config) == expected
        assert ("4KB", "seqRd") in merged.results


class TestResume:
    def test_killed_worker_resumes_from_cache(self, tmp_path, monkeypatch):
        runner = tiny_runner()
        specs = matrix_specs(PLATFORMS, WORKLOADS)
        expected = canonical_runs(runner.collect(specs), runner.config)
        manifest = plan_shards("resume", specs, runner.config, TINY, 1)[0]
        cache_dir = tmp_path / "cache"

        real = parallel_module.execute_spec
        calls = {"n": 0}

        def dies_after_three(*args, **kwargs):
            if calls["n"] >= 3:
                raise RuntimeError("worker killed")
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(parallel_module, "execute_spec",
                            dies_after_three)
        with pytest.raises(RuntimeError, match="worker killed"):
            execute_shard(manifest, cache_dir=cache_dir, workers=1)
        monkeypatch.setattr(parallel_module, "execute_spec", real)

        # The three finished runs were streamed into the cache before the
        # crash; the restarted worker loads them and only executes the rest.
        result = execute_shard(manifest, cache_dir=cache_dir, workers=1)
        assert result["cache_hits"] == 3
        assert result["cache_misses"] == len(specs) - 3
        assert [run["index"] for run in result["runs"]] == \
            list(range(len(specs)))
        merged = merge_shards([result])
        assert canonical_runs(merged.result, runner.config) == expected

    def test_partially_written_cache_entry_recovers(self, tmp_path):
        """Satellite: a torn JSON entry is a miss, then healed by store."""
        runner = tiny_runner(cache_dir=tmp_path)
        spec = RunSpec("mmap", "seqRd")
        result = runner.run_spec(spec)
        path = runner.cache.path_for(runner.cache_key(spec))
        complete = path.read_text(encoding="utf-8")
        path.write_text(complete[:len(complete) // 2], encoding="utf-8")

        fresh = tiny_runner(cache_dir=tmp_path)
        recovered = fresh.run_spec(spec)
        assert fresh.cache.hits == 0 and fresh.cache.misses == 1
        assert recovered == result
        # The re-run healed the entry (atomically), so it hits again.
        assert json.loads(path.read_text(encoding="utf-8"))["schema"]
        again = tiny_runner(cache_dir=tmp_path)
        assert again.run_spec(spec) == result
        assert again.cache.hits == 1

    def test_store_is_atomic_under_a_crashed_rename(self, tmp_path,
                                                    monkeypatch):
        """A store that dies before the rename leaves no partial entry."""
        runner = tiny_runner()
        spec = RunSpec("mmap", "seqRd")
        result = runner.run_one("mmap", "seqRd")
        cache = RunCache(tmp_path)
        key = run_cache_key(spec, runner.config, TINY)

        import repro.runner.artifacts as artifacts_module

        def crash(src, dst):
            raise OSError("killed mid-store")

        monkeypatch.setattr(artifacts_module.os, "replace", crash)
        with pytest.raises(OSError, match="killed mid-store"):
            cache.store(key, spec, result)
        monkeypatch.undo()
        # Nothing at the final path, no stray temp files left behind.
        assert cache.load(key) is None
        assert list(tmp_path.iterdir()) == []


class TestSpool:
    def _spooled(self, tmp_path, shards=2):
        runner = tiny_runner()
        specs = matrix_specs(["mmap", "hams-TE"], ["seqRd"])
        manifests = plan_shards("spooled", specs, runner.config, TINY,
                                shards)
        spool = ShardSpool(tmp_path / "spool").prepare()
        spool.add_manifests(manifests)
        return spool, specs, runner

    def test_claim_is_exclusive(self, tmp_path):
        spool, _, _ = self._spooled(tmp_path)
        first = spool.claim_next("worker-a")
        second = spool.claim_next("worker-b")
        assert first.shard_index != second.shard_index
        assert spool.claim_next("worker-c") is None
        assert first.payload["claim"]["owner"] == "worker-a"

    def test_lost_rename_race_moves_to_next_shard(self, tmp_path,
                                                  monkeypatch):
        spool, _, _ = self._spooled(tmp_path)
        real_replace = spool_module.os.replace
        raced = {"done": False}

        def lose_first_race(src, dst):
            if not raced["done"]:
                raced["done"] = True
                raise FileNotFoundError(src)  # another worker won shard 0
            return real_replace(src, dst)

        monkeypatch.setattr(spool_module.os, "replace", lose_first_race)
        claim = spool.claim_next("worker-b")
        assert claim.shard_index == 1

    def test_release_returns_shard_to_pending(self, tmp_path):
        spool, _, _ = self._spooled(tmp_path)
        claim = spool.claim_next("worker-a")
        spool.release(claim)
        status = spool.status()
        labels = sorted(status.pending)
        assert [label.rsplit(":", 1)[-1] for label in labels] == \
            ["0000", "0001"]
        assert all(label.startswith("spooled#") for label in labels)
        assert not status.running
        reclaimed = spool.claim_next("worker-b")
        assert "claim" in reclaimed.payload
        assert reclaimed.payload["claim"]["owner"] == "worker-b"

    def test_work_spool_drains_and_status_completes(self, tmp_path):
        spool, specs, runner = self._spooled(tmp_path)
        published = work_spool(spool, owner="worker-a", workers=1)
        assert len(published) == 2
        status = spool.status()
        assert status.complete
        assert [label.rsplit(":", 1)[-1]
                for label in sorted(status.done)] == ["0000", "0001"]
        merged = merge_shards(spool.load_results())
        assert merged.hosts == ["worker-a", "worker-a"]
        expected = canonical_runs(runner.collect(specs), runner.config)
        assert canonical_runs(merged.result, runner.config) == expected

    def test_failed_shard_is_released_before_the_error_surfaces(
            self, tmp_path, monkeypatch):
        spool, _, _ = self._spooled(tmp_path)

        def boom(*args, **kwargs):
            raise RuntimeError("host lost power")

        import repro.distrib.worker as worker_module
        monkeypatch.setattr(worker_module, "execute_shard", boom)
        with pytest.raises(RuntimeError, match="host lost power"):
            work_spool(spool, owner="worker-a")
        status = spool.status()
        assert [label.rsplit(":", 1)[-1]
                for label in sorted(status.pending)] == ["0000", "0001"]
        assert not status.running

    def test_force_reexecutes_published_shard_results(self, tmp_path):
        """force must refresh shard artifacts, not return stale ones."""
        runner = tiny_runner()
        spool_dir = tmp_path / "spool"
        specs = matrix_specs(["mmap"], ["seqRd"])
        expected = canonical_runs(runner.collect(specs), runner.config)
        run_sharded_specs("forced", specs, runner.config, TINY, 1,
                          spool_dir=spool_dir, workers=1)
        # Poison the published shard result; a non-forced re-run returns
        # the poisoned numbers, a forced one recomputes them.
        result_path = ShardSpool(spool_dir).result_paths()[0]
        poisoned = json.loads(result_path.read_text(encoding="utf-8"))
        poisoned["runs"][0]["result"]["total_ns"] *= 1000
        result_path.write_text(json.dumps(poisoned), encoding="utf-8")
        stale = run_sharded_specs("forced", specs, runner.config, TINY, 1,
                                  spool_dir=spool_dir, workers=1)
        assert canonical_runs(stale, runner.config) != expected
        fresh = run_sharded_specs("forced", specs, runner.config, TINY, 1,
                                  spool_dir=spool_dir, workers=1,
                                  force=True)
        assert canonical_runs(fresh, runner.config) == expected

    def test_spool_is_reusable_across_plans(self, tmp_path):
        """Two experiments can share one spool without cross-talk."""
        runner = tiny_runner()
        spool_dir = tmp_path / "spool"
        specs_a = matrix_specs(["mmap"], ["seqRd"])
        specs_b = matrix_specs(["hams-TE"], ["seqRd"])
        merged_a = run_sharded_specs("plan-a", specs_a, runner.config, TINY,
                                     2, spool_dir=spool_dir, workers=1)
        merged_b = run_sharded_specs("plan-b", specs_b, runner.config, TINY,
                                     2, spool_dir=spool_dir, workers=1)
        assert canonical_runs(merged_a, runner.config) == \
            canonical_runs(runner.collect(specs_a), runner.config)
        assert canonical_runs(merged_b, runner.config) == \
            canonical_runs(runner.collect(specs_b), runner.config)
        # Both plans' shard artifacts coexist under unique names.
        assert len(ShardSpool(spool_dir).result_paths()) == 4

    def test_claim_filter_leaves_foreign_plans_alone(self, tmp_path):
        runner = tiny_runner()
        spool = ShardSpool(tmp_path / "spool").prepare()
        plan_a = plan_shards("plan-a", matrix_specs(["mmap"], ["seqRd"]),
                             runner.config, TINY, 1)
        plan_b = plan_shards("plan-b", matrix_specs(["hams-TE"], ["seqRd"]),
                             runner.config, TINY, 1)
        spool.add_manifests(plan_a)
        spool.add_manifests(plan_b)
        claim = spool.claim_next(
            "worker-a", experiment_id=plan_b[0]["experiment_id"])
        assert claim.payload["experiment"] == "plan-b"
        assert spool.claim_next(
            "worker-a", experiment_id=plan_b[0]["experiment_id"]) is None
        # plan-a's shard is still pending, untouched.
        pending = spool.status().pending
        assert len(pending) == 1
        assert pending[0].startswith("plan-a#")
        assert pending[0].endswith(":0000")

    def test_sharded_run_waits_for_a_foreign_workers_shard(self, tmp_path):
        """A shard claimed by another host is waited for, not merged around."""
        import threading
        import time as time_module

        runner = tiny_runner()
        specs = matrix_specs(["mmap", "hams-TE"], ["seqRd"])
        manifests = plan_shards("waited", specs, runner.config, TINY, 2)
        spool = ShardSpool(tmp_path / "spool").prepare()
        spool.add_manifests(manifests)
        claim = spool.claim_next("foreign-host")
        assert claim is not None

        def foreign_worker():
            time_module.sleep(0.2)
            spool.finish(claim, execute_shard(
                claim.payload, cache_dir=spool.cache_dir, workers=1,
                host="foreign-host"))

        thread = threading.Thread(target=foreign_worker)
        thread.start()
        try:
            merged = run_sharded_specs("waited", specs, runner.config, TINY,
                                       2, spool_dir=spool.root, workers=1)
        finally:
            thread.join()
        assert canonical_runs(merged, runner.config) == \
            canonical_runs(runner.collect(specs), runner.config)

    def test_replanning_skips_claimed_and_done_shards(self, tmp_path):
        spool, specs, runner = self._spooled(tmp_path)
        manifests = plan_shards("spooled", specs, runner.config, TINY, 2)
        claim = spool.claim_next("worker-a")
        spool.finish(claim, execute_shard(claim.payload,
                                          cache_dir=spool.cache_dir,
                                          workers=1, host="worker-a"))
        other = spool.claim_next("worker-b")
        assert other is not None
        written = spool.add_manifests(manifests)
        # One shard is done, the other is claimed: nothing to re-queue.
        assert written == []
        assert spool.claim_next("worker-c") is None
        # worker-b still holds an unfinished claim, so the plan is live.
        assert spool.outstanding(manifests[0]["experiment_id"])

    def test_malformed_pending_manifest_is_skipped_not_orphaned(
            self, tmp_path):
        spool, _, _ = self._spooled(tmp_path)
        bad = spool.pending_dir / "shard-deadbeef-0000.json"
        bad.write_text("{not json", encoding="utf-8")
        drained = work_spool(spool, owner="worker-a", workers=1)
        assert len(drained) == 2  # both healthy shards executed
        # The malformed file never became an unowned claim: it stays in
        # pending/, visible to the operator under its file name.
        assert bad.exists()
        assert "shard-deadbeef-0000" in spool.status().pending

    def test_execute_shard_file_recovers_an_orphaned_claim(self, tmp_path):
        spool, specs, runner = self._spooled(tmp_path)
        claim = spool.claim_next("worker-a")  # worker dies here
        published = execute_shard_file(claim.path, spool, workers=1,
                                       host="worker-b")
        assert published.parent == spool.results_dir
        assert not claim.path.exists()
        work_spool(spool, owner="worker-b", workers=1)
        assert spool.status().complete


class TestCoordinator:
    def _results(self, tmp_path, shards=2):
        runner = tiny_runner()
        specs = matrix_specs(["mmap", "hams-TE"], ["seqRd"])
        manifests = plan_shards("exp", specs, runner.config, TINY, shards)
        return [execute_shard(manifest, cache_dir=tmp_path / "cache",
                              workers=1, host=f"host-{index}")
                for index, manifest in enumerate(manifests)]

    def test_merged_artifact_carries_shard_provenance(self, tmp_path):
        merged = merge_shards(self._results(tmp_path))
        payload = merged.artifact_payload()
        assert payload["schema"] == "repro.experiment/1"
        assert payload["meta"]["sharded"]["shard_count"] == 2
        assert payload["meta"]["sharded"]["hosts"] == ["host-0", "host-1"]
        assert payload["meta"]["sharded"]["experiment_id"].startswith(
            "sha256:")

    def test_rejects_wrong_schema(self, tmp_path):
        results = self._results(tmp_path)
        results[0]["schema"] = "repro.experiment/1"
        with pytest.raises(ValueError, match="unsupported shard result"):
            merge_shards(results)

    def test_rejects_mixed_plans(self, tmp_path):
        results = self._results(tmp_path)
        results[1]["experiment_id"] = "sha256:" + "0" * 64
        with pytest.raises(ValueError, match="disagree on 'experiment_id'"):
            merge_shards(results)

    def test_rejects_missing_shard(self, tmp_path):
        results = self._results(tmp_path)
        with pytest.raises(ValueError, match=r"missing shard\(s\) \[1\]"):
            merge_shards(results[:1])

    def test_rejects_duplicate_shard(self, tmp_path):
        results = self._results(tmp_path)
        with pytest.raises(ValueError, match="duplicate shard"):
            merge_shards([results[0], results[0], results[1]])

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError, match="no shard results"):
            merge_shards([])

    def test_rejects_truncated_runs_array(self, tmp_path):
        """A torn shard result must not merge into a short artifact."""
        results = self._results(tmp_path)
        results[0]["runs"] = []
        with pytest.raises(ValueError, match="truncated"):
            merge_shards(results)

    def test_rejects_duplicated_run_indices(self, tmp_path):
        results = self._results(tmp_path)
        results[1]["runs"] = list(results[0]["runs"])
        with pytest.raises(ValueError, match="exactly once"):
            merge_shards(results)


class TestWorkerValidation:
    def test_tampered_config_is_refused(self, tmp_path):
        runner = tiny_runner()
        manifest = plan_shards("exp", matrix_specs(["mmap"], ["seqRd"]),
                               runner.config, TINY, 1)[0]
        manifest = json.loads(json.dumps(manifest))
        manifest["config"]["hams"]["tag_check_ns"] = 99.0
        with pytest.raises(ValueError, match="reconstructed config hashes"):
            execute_shard(manifest, cache_dir=tmp_path, workers=1)

    def test_tampered_spec_key_is_refused(self, tmp_path):
        runner = tiny_runner()
        manifest = plan_shards("exp", matrix_specs(["mmap"], ["seqRd"]),
                               runner.config, TINY, 1)[0]
        manifest = json.loads(json.dumps(manifest))
        manifest["specs"][0]["key"] = "0" * 64
        with pytest.raises(ValueError, match="content-addresses"):
            execute_shard(manifest, cache_dir=tmp_path, workers=1)

    def test_empty_shard_produces_empty_result(self, tmp_path):
        runner = tiny_runner()
        specs = matrix_specs(["mmap"], ["seqRd"])
        manifests = plan_shards("exp", specs, runner.config, TINY, 3)
        results = [execute_shard(manifest, cache_dir=tmp_path / "cache",
                                 workers=1)
                   for manifest in manifests]
        assert [len(result["runs"]) for result in results] == [1, 0, 0]
        merged = merge_shards(results)
        assert canonical_runs(merged.result, runner.config) == \
            canonical_runs(runner.collect(specs), runner.config)
        assert merged.result.scale == TINY

    def test_result_schema(self, tmp_path):
        runner = tiny_runner()
        manifest = plan_shards("exp", matrix_specs(["mmap"], ["seqRd"]),
                               runner.config, TINY, 1)[0]
        result = execute_shard(manifest, cache_dir=tmp_path, workers=1,
                               host="me")
        assert result["schema"] == SHARD_RESULT_SCHEMA
        assert result["host"] == "me"
        assert result["experiment_id"] == manifest["experiment_id"]
        assert result["runs"][0]["operations_per_second"] > 0
