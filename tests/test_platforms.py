"""Platform models: construction, replay, and per-platform behaviour."""

import pytest

from repro.config import default_config
from repro.platforms.base import MemoryServiceResult
from repro.platforms.bypass import BypassPlatform
from repro.platforms.flatflash import FlatFlashPlatform
from repro.platforms.hams_platform import HAMSPlatform
from repro.platforms.mmap_platform import MmapPlatform
from repro.platforms.nvdimm_c import NvdimmCPlatform
from repro.platforms.optane import OptanePlatform
from repro.platforms.oracle import OraclePlatform
from repro.platforms.registry import PLATFORM_NAMES, available_platforms, create_platform
from repro.units import KB
from repro.workloads.registry import ExperimentScale, build_trace, scale_system_config

SCALE = ExperimentScale(capacity_scale=1 / 512, min_accesses=200,
                        max_accesses=400)
CONFIG = scale_system_config(default_config(), SCALE)


def small_trace(name: str = "seqRd"):
    return build_trace(name, SCALE)


class TestRegistry:
    def test_all_paper_platforms_constructible(self):
        for name in PLATFORM_NAMES:
            platform = create_platform(name, CONFIG)
            assert platform.name == name

    def test_available_platforms_superset_of_paper_list(self):
        assert set(PLATFORM_NAMES).issubset(set(available_platforms()))

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            create_platform("warp-drive", CONFIG)

    def test_default_config_used_when_omitted(self):
        platform = create_platform("oracle")
        assert platform.config.nvdimm.capacity_bytes == \
            default_config().nvdimm.capacity_bytes


class TestMemoryServiceResult:
    def test_rejects_negative_latencies(self):
        with pytest.raises(ValueError):
            MemoryServiceResult(latency_ns=-1.0)


class TestOracle:
    def test_every_access_is_dram_speed(self):
        platform = OraclePlatform(CONFIG)
        result = platform.service_memory_access(0, 64, False, 0.0)
        assert result.latency_ns < 200.0
        assert result.os_ns == 0.0
        assert result.storage_ns == 0.0

    def test_run_produces_result(self):
        result = OraclePlatform(CONFIG).run(small_trace())
        assert result.platform == "oracle"
        assert result.operations_per_second > 0
        assert result.os_ns == 0.0
        assert result.energy.total_nj > 0


class TestMmap:
    def test_page_fault_charges_os_and_storage(self):
        platform = MmapPlatform(CONFIG)
        platform.prepare(small_trace())
        result = platform.service_memory_access(0, KB(4), False, 0.0)
        assert result.os_ns > 0
        assert result.storage_ns > 0

    def test_resident_page_is_cheap(self):
        platform = MmapPlatform(CONFIG)
        platform.prepare(small_trace())
        platform.service_memory_access(0, KB(4), False, 0.0)
        hit = platform.service_memory_access(0, KB(4), False, 1e6)
        assert hit.os_ns == 0.0
        assert hit.latency_ns < 5_000.0

    def test_sequential_faults_use_readahead(self):
        platform = MmapPlatform(CONFIG)
        platform.prepare(small_trace())
        platform.service_memory_access(0, KB(4), False, 0.0)
        platform.service_memory_access(KB(4), KB(4), False, 1e6)
        assert platform.readahead_fills > 0

    def test_run_has_significant_os_share(self):
        """Figure 7a / 17: the mmap path is dominated by software overhead."""
        result = MmapPlatform(CONFIG).run(small_trace("rndRd"))
        fractions = result.breakdown_fractions()
        assert fractions["os"] > 0.2

    def test_ssd_kinds(self):
        for kind in ("ull-flash", "nvme-ssd", "sata-ssd"):
            platform = MmapPlatform(CONFIG, ssd_kind=kind)
            assert platform.ssd.config.name == kind

    def test_ull_faster_than_sata_for_mmap(self):
        """Figure 6 shape: the MMF system is fastest on ULL-Flash."""
        trace = small_trace("rndRd")
        ull = MmapPlatform(CONFIG, ssd_kind="ull-flash").run(trace)
        sata = MmapPlatform(CONFIG, ssd_kind="sata-ssd").run(trace)
        assert ull.operations_per_second > sata.operations_per_second


class TestBypass:
    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            BypassPlatform(CONFIG, strategy="bogus")

    def test_ipc_ordering_matches_figure_7b(self):
        """NVDIMM >> ULL-buff > ULL in IPC."""
        trace = small_trace("rndRd")
        ipc = {}
        for strategy in ("nvdimm", "ull", "ull-buff"):
            platform = BypassPlatform(CONFIG, strategy=strategy)
            ipc[strategy] = platform.run(trace).ipc
        assert ipc["nvdimm"] > ipc["ull-buff"] > ipc["ull"]
        assert ipc["ull"] < 0.5 * ipc["nvdimm"]


class TestOptane:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            OptanePlatform(CONFIG, mode="bogus")

    def test_persist_mode_has_no_dram_cache(self):
        platform = OptanePlatform(CONFIG, mode="persist")
        assert platform.dram_cache is None

    def test_memory_mode_beats_persist_on_fine_grained(self):
        """Fine-grained workloads benefit from the DRAM cache (Section VI-B)."""
        trace = small_trace("update")
        persist = OptanePlatform(CONFIG, mode="persist").run(trace)
        memory = OptanePlatform(CONFIG, mode="memory").run(trace)
        assert memory.operations_per_second >= persist.operations_per_second * 0.95

    def test_fine_grained_wastes_optane_bandwidth(self):
        platform = OptanePlatform(CONFIG, mode="persist")
        platform.run(small_trace("update"))
        assert platform.optane.bandwidth_waste_ratio > 1.5


class TestFlatFlash:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            FlatFlashPlatform(CONFIG, mode="bogus")

    def test_page_granular_access_is_very_slow(self):
        """Figure 16a: flatflash-P underperforms mmap on the microbenchmark."""
        trace = small_trace("seqRd")
        flatflash = FlatFlashPlatform(CONFIG, mode="persist").run(trace)
        mmap = MmapPlatform(CONFIG).run(trace)
        assert flatflash.operations_per_second < mmap.operations_per_second

    def test_memory_mode_promotes_hot_pages(self):
        platform = FlatFlashPlatform(CONFIG, mode="memory")
        result = platform.run(small_trace("update"))
        assert platform.promotions > 0
        assert result.operations_per_second > 0


class TestNvdimmC:
    def test_migration_latency_dominates_misses(self):
        platform = NvdimmCPlatform(CONFIG)
        platform.prepare(small_trace())
        miss = platform.service_memory_access(0, 64, False, 0.0)
        assert miss.latency_ns >= platform.migration_latency_ns

    def test_hit_after_migration_is_fast(self):
        platform = NvdimmCPlatform(CONFIG)
        platform.prepare(small_trace())
        platform.service_memory_access(0, 64, False, 0.0)
        hit = platform.service_memory_access(0, 64, False, 1e6)
        assert hit.latency_ns < 1_000.0


class TestHAMSPlatform:
    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            HAMSPlatform(CONFIG, variant="hams-XX")

    def test_variant_configuration(self):
        platform = HAMSPlatform(CONFIG, variant="hams-TP")
        assert platform.controller.hams_config.is_tight
        assert platform.controller.hams_config.is_persist

    def test_no_os_time_in_breakdown(self):
        """HAMS serves every request in hardware: no OS or SSD slices."""
        result = HAMSPlatform(CONFIG, variant="hams-TE").run(small_trace())
        assert result.os_ns == 0.0
        assert result.ssd_ns == 0.0

    def test_memory_delay_breakdown_present(self):
        result = HAMSPlatform(CONFIG, variant="hams-LE").run(small_trace())
        assert result.memory_delay["total_ns"] > 0

    def test_extend_beats_persist(self):
        trace = small_trace("seqWr")
        persist = HAMSPlatform(CONFIG, variant="hams-TP").run(trace)
        extend = HAMSPlatform(CONFIG, variant="hams-TE").run(trace)
        assert extend.operations_per_second > persist.operations_per_second

    def test_power_failure_passthrough(self):
        platform = HAMSPlatform(CONFIG, variant="hams-LE")
        platform.run(small_trace())
        down = platform.power_failure(at_ns=1e9)
        report = platform.recover(at_ns=down)
        assert report.consistent


class TestCrossPlatformShape:
    def test_hams_te_beats_mmap_on_microbench(self):
        trace = small_trace("seqRd")
        hams = HAMSPlatform(CONFIG, variant="hams-TE").run(trace)
        mmap = MmapPlatform(CONFIG).run(trace)
        assert hams.operations_per_second > mmap.operations_per_second

    def test_oracle_is_best(self):
        trace = small_trace("seqRd")
        oracle = OraclePlatform(CONFIG).run(trace)
        hams = HAMSPlatform(CONFIG, variant="hams-TE").run(trace)
        assert oracle.operations_per_second >= hams.operations_per_second

    def test_run_result_breakdown_sums_to_total(self):
        for name in ("mmap", "hams-TE", "oracle"):
            result = create_platform(name, CONFIG).run(small_trace())
            assert result.total_ns == pytest.approx(
                result.app_ns + result.os_ns + result.ssd_ns, rel=1e-6)

    def test_run_result_serialisable_fields(self):
        result = create_platform("hams-TE", CONFIG).run(small_trace())
        assert result.instructions > 0
        assert result.memory_accesses == len(small_trace())
        assert 0 < result.ipc <= 4
        assert result.kilo_pages_per_second == pytest.approx(
            result.operations_per_second / 1e3)
