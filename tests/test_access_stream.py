"""Columnar AccessStream: round-tripping, views, and trace integration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.units import KB, MB
from repro.workloads.generators import SequentialPattern
from repro.workloads.trace import AccessStream, MemoryAccess, WorkloadTrace

access_records = st.lists(
    st.builds(MemoryAccess,
              address=st.integers(min_value=0, max_value=2**40),
              size_bytes=st.integers(min_value=1, max_value=KB(64)),
              is_write=st.booleans()),
    max_size=64)


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(access_records)
    def test_accesses_round_trip(self, records):
        stream = AccessStream.from_accesses(records)
        assert len(stream) == len(records)
        assert stream.to_accesses() == records

    @settings(max_examples=50, deadline=None)
    @given(access_records)
    def test_indexing_matches_iteration(self, records):
        stream = AccessStream.from_accesses(records)
        assert [stream[i] for i in range(len(stream))] == list(stream)

    @settings(max_examples=50, deadline=None)
    @given(access_records, st.integers(min_value=1, max_value=17))
    def test_chunks_cover_stream_in_order(self, records, chunk_size):
        stream = AccessStream.from_accesses(records)
        recombined = [access for chunk in stream.chunks(chunk_size)
                      for access in chunk]
        assert recombined == records
        assert all(len(chunk) <= chunk_size
                   for chunk in stream.chunks(chunk_size))

    @settings(max_examples=50, deadline=None)
    @given(access_records)
    def test_counts_match_scalar_records(self, records):
        stream = AccessStream.from_accesses(records)
        assert stream.write_count == sum(1 for r in records if r.is_write)
        assert stream.read_count == sum(1 for r in records if not r.is_write)
        expected_touched = max(
            (r.address + r.size_bytes for r in records), default=0)
        assert stream.touched_bytes() == expected_touched


class TestConstruction:
    def test_from_arrays_broadcasts_scalar_size(self):
        stream = AccessStream.from_arrays([0, 64, 128], 64,
                                          [False, True, False])
        assert stream.sizes.tolist() == [64, 64, 64]
        assert stream[1] == MemoryAccess(64, 64, True)

    def test_from_arrays_validates(self):
        with pytest.raises(ValueError):
            AccessStream.from_arrays([-1], 64, [False])
        with pytest.raises(ValueError):
            AccessStream.from_arrays([0], 0, [False])
        with pytest.raises(ValueError):
            AccessStream.from_arrays([0, 1], [64], [False, True])

    def test_slice_is_view(self):
        stream = AccessStream.from_arrays(np.arange(10) * 64, 64,
                                          np.zeros(10, dtype=bool))
        window = stream[2:5]
        assert isinstance(window, AccessStream)
        assert window.addresses.base is not None  # numpy view, not a copy
        assert window.to_accesses() == stream.to_accesses()[2:5]

    def test_coerce_passes_streams_through(self):
        stream = AccessStream.from_arrays([0], 64, [False])
        assert AccessStream.coerce(stream) is stream

    def test_equality(self):
        first = AccessStream.from_arrays([0, 64], 64, [False, True])
        second = AccessStream.from_arrays([0, 64], 64, [False, True])
        third = AccessStream.from_arrays([0, 64], 64, [True, True])
        assert first == second
        assert first != third

    def test_invalid_chunk_size(self):
        stream = AccessStream.from_arrays([0], 64, [False])
        with pytest.raises(ValueError):
            list(stream.chunks(0))

    def test_nbytes_is_columnar(self):
        stream = AccessStream.from_arrays(np.arange(1000) * 64, 64,
                                          np.zeros(1000, dtype=bool))
        # 8 B address + 8 B size + 1 B flag per access.
        assert stream.nbytes == 1000 * 17


class TestGeneratorStream:
    def test_generator_builds_stream_directly(self):
        generator = SequentialPattern(MB(1), KB(4))
        stream = generator.stream(100, write_fraction=0.5)
        assert isinstance(stream, AccessStream)
        assert len(stream) == 100
        assert stream.sizes.tolist() == [KB(4)] * 100
        assert np.array_equal(stream.addresses,
                              SequentialPattern(MB(1), KB(4)).addresses(100))
        assert 0 < stream.write_count < 100

    def test_generator_stream_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            SequentialPattern(MB(1), KB(4)).stream(10, write_fraction=1.5)


class TestWorkloadTraceIntegration:
    def _trace(self, accesses):
        return WorkloadTrace(name="t", suite="s", accesses=accesses,
                             dataset_bytes=MB(1),
                             compute_instructions_per_access=100.0,
                             accesses_per_operation=10.0,
                             operation_unit="ops",
                             total_instructions=1000)

    def test_trace_accepts_record_list(self):
        records = [MemoryAccess(0, 64, False), MemoryAccess(64, 64, True)]
        trace = self._trace(records)
        assert isinstance(trace.stream, AccessStream)
        assert trace.accesses is trace.stream
        assert list(trace) == records

    def test_trace_accepts_stream(self):
        stream = AccessStream.from_arrays([0, 64], 64, [False, True])
        trace = self._trace(stream)
        assert trace.stream is stream
        assert trace.write_fraction == 0.5
