"""The artifact diff / perf-regression gate (`repro report --diff`)."""

import copy
import json

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.config import default_config
from repro.platforms.base import RunResult
from repro.energy.accounting import EnergyBreakdown
from repro.runner.artifacts import experiment_to_artifact
from repro.runner.cli import main as cli_main
from repro.runner.regression import diff_artifacts, diff_payloads
from repro.workloads.registry import ExperimentScale


def _run_result(platform, workload, total_ns):
    return RunResult(
        platform=platform, workload=workload, suite="s",
        operation_unit="ops", operations=1000.0, total_ns=total_ns,
        app_ns=total_ns, os_ns=0.0, ssd_ns=0.0, memory_stall_ns=0.0,
        compute_ns=total_ns, instructions=1000, memory_accesses=100,
        offchip_accesses=10, ipc=1.0, mips=1.0,
        energy=EnergyBreakdown(cpu_nj=1.0, nvdimm_nj=1.0,
                               internal_dram_nj=0.0, znand_nj=0.0))


def _artifact(name, throughputs):
    """Build an artifact payload with given {(platform, wl): ops/s}."""
    experiment = ExperimentResult(scale=ExperimentScale())
    for (platform, workload), ops_per_s in throughputs.items():
        total_ns = 1000.0 / ops_per_s * 1e9
        experiment.add(platform, workload,
                       _run_result(platform, workload, total_ns))
    return experiment_to_artifact(name, experiment, default_config())


BASELINE = _artifact("base", {("hams-TE", "seqRd"): 1000.0,
                              ("mmap", "seqRd"): 100.0})


class TestDiffPayloads:
    def test_identical_artifacts_pass(self):
        report = diff_payloads(BASELINE, copy.deepcopy(BASELINE))
        assert report.passed
        assert not report.regressions
        assert len(report.entries) == 2
        assert "PASS" in report.format()

    def test_regression_past_threshold_fails(self):
        slower = _artifact("cand", {("hams-TE", "seqRd"): 900.0,
                                    ("mmap", "seqRd"): 100.0})
        report = diff_payloads(BASELINE, slower, threshold=0.05)
        assert not report.passed
        assert [entry.platform for entry in report.regressions] == ["hams-TE"]
        assert "REGRESSION" in report.format()

    def test_drift_within_threshold_passes(self):
        slightly = _artifact("cand", {("hams-TE", "seqRd"): 995.0,
                                      ("mmap", "seqRd"): 100.0})
        assert diff_payloads(BASELINE, slightly, threshold=0.02).passed

    def test_improvement_passes(self):
        faster = _artifact("cand", {("hams-TE", "seqRd"): 2000.0,
                                    ("mmap", "seqRd"): 100.0})
        assert diff_payloads(BASELINE, faster, threshold=0.02).passed

    def test_missing_run_fails(self):
        partial = _artifact("cand", {("hams-TE", "seqRd"): 1000.0})
        report = diff_payloads(BASELINE, partial)
        assert not report.passed
        assert report.missing == [("mmap", "seqRd")]

    def test_extra_candidate_runs_are_ignored(self):
        extra = _artifact("cand", {("hams-TE", "seqRd"): 1000.0,
                                   ("mmap", "seqRd"): 100.0,
                                   ("oracle", "seqRd"): 9000.0})
        assert diff_payloads(BASELINE, extra).passed

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            diff_payloads(BASELINE, copy.deepcopy(BASELINE), threshold=-0.1)


class TestDiffCli:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_cli_diff_pass_and_fail(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", BASELINE)
        good = self._write(tmp_path / "good.json", copy.deepcopy(BASELINE))
        bad = self._write(tmp_path / "bad.json", _artifact(
            "cand", {("hams-TE", "seqRd"): 10.0, ("mmap", "seqRd"): 100.0}))

        assert cli_main(["report", "--diff", str(base), str(good)]) == 0
        assert "PASS" in capsys.readouterr().out
        assert cli_main(["report", "--diff", str(base), str(bad),
                         "--threshold", "0.05"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_diff_unreadable_artifact(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", BASELINE)
        missing = tmp_path / "nope.json"
        assert cli_main(["report", "--diff", str(base), str(missing)]) == 2
        assert "cannot diff" in capsys.readouterr().err

    def test_diff_artifacts_loads_files(self, tmp_path):
        base = self._write(tmp_path / "base.json", BASELINE)
        cand = self._write(tmp_path / "cand.json", copy.deepcopy(BASELINE))
        assert diff_artifacts(base, cand).passed
