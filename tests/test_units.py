"""Unit-conversion helpers."""

import pytest

from repro import units


class TestTimeConversions:
    def test_us_to_ns(self):
        assert units.us(3) == 3000.0

    def test_ms_to_ns(self):
        assert units.ms(1.5) == 1_500_000.0

    def test_seconds_to_ns(self):
        assert units.seconds(2) == 2e9

    def test_roundtrip_us(self):
        assert units.to_us(units.us(7.25)) == pytest.approx(7.25)

    def test_roundtrip_ms(self):
        assert units.to_ms(units.ms(0.125)) == pytest.approx(0.125)

    def test_roundtrip_seconds(self):
        assert units.to_seconds(units.seconds(3.5)) == pytest.approx(3.5)

    def test_ns_identity(self):
        assert units.ns(42) == 42.0


class TestSizeConversions:
    def test_kb(self):
        assert units.KB(4) == 4096

    def test_mb(self):
        assert units.MB(1) == 1024 ** 2

    def test_gb(self):
        assert units.GB(8) == 8 * 1024 ** 3

    def test_tb(self):
        assert units.TB(1) == 1024 ** 4

    def test_to_gb_roundtrip(self):
        assert units.to_GB(units.GB(800)) == pytest.approx(800.0)

    def test_to_mb_roundtrip(self):
        assert units.to_MB(units.MB(512)) == pytest.approx(512.0)


class TestBandwidth:
    def test_gb_per_s_converts_to_bytes_per_ns(self):
        # 1 GB/s is ~1.074 bytes per ns (GiB-based).
        assert units.gb_per_s(1.0) == pytest.approx(1024 ** 3 / 1e9)

    def test_transfer_time_basic(self):
        bandwidth = units.gb_per_s(4.0)
        size = units.KB(4)
        assert units.transfer_time_ns(size, bandwidth) == pytest.approx(
            size / bandwidth)

    def test_transfer_time_zero_bandwidth_is_free(self):
        assert units.transfer_time_ns(units.MB(1), 0.0) == 0.0

    def test_bandwidth_gbps_roundtrip(self):
        elapsed = units.transfer_time_ns(units.GB(1), units.gb_per_s(2.0))
        assert units.bandwidth_gbps(units.GB(1), elapsed) == pytest.approx(2.0)

    def test_bandwidth_gbps_zero_time(self):
        assert units.bandwidth_gbps(units.GB(1), 0.0) == 0.0


class TestEnergy:
    def test_energy_nj_is_power_times_time(self):
        assert units.energy_nj(2.0, 1000.0) == 2000.0

    def test_to_joules(self):
        assert units.to_joules(3e9) == pytest.approx(3.0)

    def test_to_millijoules(self):
        assert units.to_millijoules(5e6) == pytest.approx(5.0)
