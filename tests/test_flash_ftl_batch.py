"""Property-based parity: ``FlashTranslationLayer.write_batch`` vs scalar.

The batched flash walk leans on :meth:`write_batch` keeping the *entire*
FTL state — mapping table, reverse map, per-plane append points, free
lists, GC pressure and the round-robin allocation cursor — bit-identical
to a scalar :meth:`write` loop.  Garbage collection is the hard part:
each element's allocation must observe the mapping state left by every
earlier element so victim selection and relocation happen at the same
points.  Hypothesis drives arbitrary LPN streams (with heavy overwrite
skew, so GC actually fires on the tiny geometry) and the suite asserts
exact state equality after every interleaving, including trim holes and
device wrap-around.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import FlashGeometry
from repro.flash.ftl import FlashTranslationLayer


def tiny_ftl() -> FlashTranslationLayer:
    # 2 planes x 8 blocks x 4 pages = 64 physical pages.  The streams below
    # only touch LPNs 0..15, so steady state keeps ~16 valid pages: victims
    # are mostly-invalid blocks and collections stay cheap, yet the append
    # points still wrap both planes many times per stream.
    geometry = FlashGeometry(channels=1, packages_per_channel=1,
                             dies_per_package=2, planes_per_die=1,
                             blocks_per_plane=8, pages_per_block=4)
    return FlashTranslationLayer(geometry)


def assert_state_equal(left: FlashTranslationLayer,
                       right: FlashTranslationLayer) -> None:
    assert left._mapping == right._mapping
    assert left._reverse == right._reverse
    assert left._allocation_cursor == right._allocation_cursor
    assert left.gc_invocations == right.gc_invocations
    assert left.gc_pages_moved == right.gc_pages_moved
    assert left.host_writes == right.host_writes
    assert left.erase_counts() == right.erase_counts()
    assert left.statistics() == right.statistics()
    for plane_l, plane_r in zip(left._planes, right._planes):
        assert plane_l.free_blocks == plane_r.free_blocks
        assert plane_l.open_block == plane_r.open_block
        assert plane_l.next_page == plane_r.next_page
        assert plane_l.valid_pages == plane_r.valid_pages
        assert plane_l.gc_pressed == plane_r.gc_pressed


# A 16-LPN working set on a 64-page device: overwrites (and therefore
# invalidation + GC) common while leaving enough slack that victim
# blocks are mostly invalid; the append points wrap the device repeatedly.
lpn_streams = st.lists(st.integers(min_value=0, max_value=15),
                       min_size=1, max_size=64)


class TestWriteBatchParity:
    @settings(max_examples=120, deadline=None)
    @given(lpn_streams)
    def test_batch_equals_scalar_loop(self, lpns):
        scalar = tiny_ftl()
        batched = tiny_ftl()
        scalar_results = [scalar.write(lpn) for lpn in lpns]
        batch_results = batched.write_batch(np.array(lpns, dtype=np.int64))
        assert len(batch_results) == len(scalar_results)
        for (addr_b, gc_b), (addr_s, gc_s) in zip(batch_results,
                                                  scalar_results):
            assert addr_b == addr_s
            assert gc_b.page_moves == gc_s.page_moves
            assert gc_b.blocks_erased == gc_s.blocks_erased
        assert_state_equal(batched, scalar)

    @settings(max_examples=60, deadline=None)
    @given(lpn_streams, lpn_streams)
    def test_split_points_are_invisible(self, first, second):
        # One batch vs two back-to-back batches over the same stream: the
        # walk must be history-free at batch boundaries.
        whole = tiny_ftl()
        split = tiny_ftl()
        whole_results = whole.write_batch(first + second)
        split_results = split.write_batch(first) + split.write_batch(second)
        assert [(a, g.page_moves, g.blocks_erased)
                for a, g in whole_results] == \
               [(a, g.page_moves, g.blocks_erased)
                for a, g in split_results]
        assert_state_equal(split, whole)

    @settings(max_examples=60, deadline=None)
    @given(lpn_streams,
           st.lists(st.integers(min_value=0, max_value=15),
                    min_size=1, max_size=8),
           lpn_streams)
    def test_trim_between_batches(self, before, trims, after):
        scalar = tiny_ftl()
        batched = tiny_ftl()
        for lpn in before:
            scalar.write(lpn)
        batched.write_batch(before)
        for lpn in trims:
            scalar.trim(lpn)
            batched.trim(lpn)
        for lpn in after:
            scalar.write(lpn)
        batched.write_batch(after)
        assert_state_equal(batched, scalar)

    @settings(max_examples=60, deadline=None)
    @given(lpn_streams)
    def test_lookup_batch_matches_scalar_lookup(self, lpns):
        ftl = tiny_ftl()
        ftl.write_batch(lpns)
        probe = list(range(16))
        batch_view = ftl.lookup_batch(np.array(probe, dtype=np.int64))
        assert batch_view == [ftl.lookup(lpn) for lpn in probe]

    def test_gc_actually_fires_under_this_geometry(self):
        # Guard against the suite silently testing the no-GC fast path
        # only: every 4th write lands a fresh cold LPN (so each 4-page block
        # keeps at least one live page) between hammered hot LPNs, forcing
        # the collector to relocate live data, not just erase garbage.
        stream = []
        cold = 16
        for j in range(160):
            if j % 4 == 0 and cold < 48:
                stream.append(cold)
                cold += 1
            else:
                stream.append(j % 4)
        ftl = tiny_ftl()
        ftl.write_batch(stream)
        assert ftl.gc_invocations > 0
        assert ftl.gc_pages_moved > 0
