"""Energy models and accounting (Figure 19 machinery)."""

import pytest

from repro.config import EnergyConfig
from repro.energy.accounting import EnergyAccount, EnergyBreakdown
from repro.energy.models import ComponentPowerModel, EnergyModel
from repro.units import GB, KB, MB, seconds


class TestComponentPowerModel:
    def test_energy_is_power_times_time(self):
        model = ComponentPowerModel("cpu", active_w=10.0, idle_w=2.0)
        assert model.energy_nj(1000.0, 500.0) == pytest.approx(11_000.0)

    def test_negative_durations_rejected(self):
        model = ComponentPowerModel("cpu", 10.0, 2.0)
        with pytest.raises(ValueError):
            model.energy_nj(-1.0, 0.0)


class TestEnergyModel:
    def test_cpu_idle_cheaper_than_active(self):
        model = EnergyModel(EnergyConfig(), GB(8))
        active = model.cpu_energy_nj(seconds(1), 0.0)
        idle = model.cpu_energy_nj(0.0, seconds(1))
        assert idle < active

    def test_nvdimm_energy_scales_with_capacity(self):
        small = EnergyModel(EnergyConfig(), GB(8))
        large = EnergyModel(EnergyConfig(), GB(64))
        duration = seconds(0.1)
        assert (large.nvdimm_energy_nj(duration, 0.0, 0)
                > small.nvdimm_energy_nj(duration, 0.0, 0))

    def test_internal_dram_removed_in_advanced_hams(self):
        with_buffer = EnergyModel(EnergyConfig(), GB(8),
                                  ssd_internal_dram_present=True)
        without_buffer = EnergyModel(EnergyConfig(), GB(8),
                                     ssd_internal_dram_present=False)
        assert with_buffer.internal_dram_energy_nj(seconds(1), MB(1)) > 0
        assert without_buffer.internal_dram_energy_nj(seconds(1), MB(1)) == 0

    def test_znand_program_costs_more_than_read(self):
        model = EnergyModel(EnergyConfig(), GB(8))
        read = model.znand_energy_nj(100, 0, 0.0)
        program = model.znand_energy_nj(0, 100, 0.0)
        assert program > read

    def test_znand_rejects_negative_counts(self):
        model = EnergyModel(EnergyConfig(), GB(8))
        with pytest.raises(ValueError):
            model.znand_energy_nj(-1, 0, 0.0)

    def test_pcie_costs_more_per_byte_than_ddr(self):
        model = EnergyModel(EnergyConfig(), GB(8))
        assert (model.interconnect_energy_nj(pcie_bytes=MB(1), ddr_bytes=0)
                > model.interconnect_energy_nj(pcie_bytes=0, ddr_bytes=MB(1)))

    def test_component_table(self):
        model = EnergyModel(EnergyConfig(), GB(8))
        table = model.component_table()
        assert set(table) == {"cpu", "nvdimm", "internal_dram"}


class TestEnergyBreakdown:
    def test_total(self):
        breakdown = EnergyBreakdown(cpu_nj=1.0, nvdimm_nj=2.0,
                                    internal_dram_nj=3.0, znand_nj=4.0)
        assert breakdown.total_nj == 10.0

    def test_normalised_to_baseline(self):
        baseline = EnergyBreakdown(cpu_nj=5.0, nvdimm_nj=5.0,
                                   internal_dram_nj=0.0, znand_nj=0.0)
        other = EnergyBreakdown(cpu_nj=2.0, nvdimm_nj=2.0,
                                internal_dram_nj=1.0, znand_nj=0.0)
        normalised = other.normalised_to(baseline)
        assert normalised["total"] == pytest.approx(0.5)
        assert normalised["cpu"] == pytest.approx(0.2)

    def test_normalise_to_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            EnergyBreakdown().normalised_to(EnergyBreakdown())

    def test_as_dict(self):
        breakdown = EnergyBreakdown(cpu_nj=1.0)
        assert breakdown.as_dict()["cpu_nj"] == 1.0
        assert breakdown.as_dict()["total_nj"] == 1.0


class TestEnergyAccount:
    def test_finalise_derives_idle_time(self):
        account = EnergyAccount()
        account.charge_cpu(busy_ns=300.0)
        account.charge_nvdimm(active_ns=100.0, bytes_moved=KB(4))
        account.finalise(1000.0)
        assert account.cpu_idle_ns == pytest.approx(700.0)
        assert account.nvdimm_idle_ns == pytest.approx(900.0)

    def test_finalise_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            EnergyAccount().finalise(-1.0)

    def test_breakdown_uses_all_categories(self):
        account = EnergyAccount()
        account.charge_cpu(busy_ns=1000.0)
        account.charge_nvdimm(active_ns=500.0, bytes_moved=KB(128))
        account.charge_internal_dram(KB(128))
        account.charge_flash(page_reads=10, page_programs=2)
        account.charge_link(pcie_bytes=KB(128))
        account.finalise(2000.0)
        breakdown = account.breakdown(EnergyModel(EnergyConfig(), GB(8)))
        assert breakdown.cpu_nj > 0
        assert breakdown.nvdimm_nj > 0
        assert breakdown.internal_dram_nj > 0
        assert breakdown.znand_nj > 0

    def test_longer_runtime_increases_idle_energy(self):
        """The core of the paper's energy argument: mmap's longer runtime
        costs CPU/DRAM idle energy even with identical device activity."""
        model = EnergyModel(EnergyConfig(), GB(8))

        def breakdown_for(duration_ns):
            account = EnergyAccount()
            account.charge_cpu(busy_ns=1_000_000.0)
            account.charge_flash(page_reads=100, page_programs=10)
            account.finalise(duration_ns)
            return account.breakdown(model)

        short = breakdown_for(2_000_000.0)
        long = breakdown_for(10_000_000.0)
        assert long.total_nj > short.total_nj
