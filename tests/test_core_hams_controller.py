"""The HAMS controller: hits, misses, evictions, modes, integrations, recovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import default_config
from repro.core.hams_controller import HAMSController
from repro.units import GB, KB, MB
from repro.workloads.registry import ExperimentScale, scale_system_config


def small_config(integration: str = "tight", mode: str = "extend",
                 mos_page: int = KB(128)):
    """A heavily scaled-down system so controller tests run in milliseconds."""
    config = scale_system_config(default_config(),
                                 ExperimentScale(capacity_scale=1 / 512))
    return config.with_hams(integration=integration, mode=mode,
                            mos_page_bytes=mos_page)


def controller(**kwargs) -> HAMSController:
    return HAMSController(small_config(**kwargs))


def warm_controller(**kwargs) -> HAMSController:
    """A controller whose ULL-Flash holds data (as after the paper's warm-up)."""
    hams = controller(**kwargs)
    hams.ssd.precondition(0, min(hams.ssd.logical_pages, 4096))
    return hams


class TestBasicAccess:
    def test_first_access_misses_then_hits(self):
        hams = controller()
        first = hams.access(0, 64, is_write=False, at_ns=0.0)
        assert not first.hit
        second = hams.access(64, 64, is_write=False, at_ns=first.finish_ns)
        assert second.hit
        assert second.latency_ns < first.latency_ns

    def test_hit_latency_is_dram_like(self):
        hams = controller()
        first = hams.access(0, 64, False, 0.0)
        hit = hams.access(128, 64, False, first.finish_ns)
        assert hit.latency_ns < 1_000.0  # well under a microsecond

    def test_miss_latency_includes_flash(self):
        hams = warm_controller()
        miss = hams.access(0, 64, False, 0.0)
        assert miss.latency_ns > 3_000.0  # at least one Z-NAND read
        assert miss.ssd_ns > 0
        assert miss.dma_ns > 0

    def test_mos_capacity_matches_ssd(self):
        hams = controller()
        assert hams.mos_capacity_bytes == hams.ssd.capacity_bytes

    def test_out_of_range_access_rejected(self):
        hams = controller()
        with pytest.raises(ValueError):
            hams.access(hams.mos_capacity_bytes, 64, False, 0.0)

    def test_write_marks_entry_dirty(self):
        hams = controller()
        hams.access(0, 64, is_write=True, at_ns=0.0)
        assert hams.tag_array.dirty_count() == 1

    def test_accesses_are_counted(self):
        hams = controller()
        now = 0.0
        for index in range(5):
            result = hams.access(index * 64, 64, False, now)
            now = result.finish_ns
        assert hams.accesses == 5


class TestEvictions:
    def test_dirty_conflict_triggers_eviction(self):
        hams = controller()
        page_bytes = hams.mos_page_bytes
        entries = hams.tag_array.entries_count
        # Write page 0, then access the conflicting page one "way" further.
        first = hams.access(0, 64, is_write=True, at_ns=0.0)
        conflict = hams.access(entries * page_bytes, 64, is_write=False,
                               at_ns=first.finish_ns)
        assert conflict.evicted
        assert hams.evictions == 1

    def test_clean_conflict_does_not_evict(self):
        hams = controller()
        page_bytes = hams.mos_page_bytes
        entries = hams.tag_array.entries_count
        first = hams.access(0, 64, is_write=False, at_ns=0.0)
        conflict = hams.access(entries * page_bytes, 64, is_write=False,
                               at_ns=first.finish_ns)
        assert not conflict.evicted
        assert hams.evictions == 0

    def test_eviction_tracked_as_background_traffic_in_extend_mode(self):
        hams = controller(mode="extend")
        page_bytes = hams.mos_page_bytes
        entries = hams.tag_array.entries_count
        first = hams.access(0, 64, is_write=True, at_ns=0.0)
        hams.access(entries * page_bytes, 64, False, first.finish_ns)
        assert hams.background_flash_programs > 0


class TestModes:
    def test_persist_mode_miss_slower_than_extend(self):
        persist = controller(mode="persist")
        extend = controller(mode="extend")
        persist_miss = persist.access(0, 64, False, 0.0)
        extend_miss = extend.access(0, 64, False, 0.0)
        assert persist_miss.latency_ns > extend_miss.latency_ns

    def test_persist_mode_write_conflict_much_slower(self):
        results = {}
        for mode in ("persist", "extend"):
            hams = controller(mode=mode)
            entries = hams.tag_array.entries_count
            page = hams.mos_page_bytes
            first = hams.access(0, 64, True, 0.0)
            conflict = hams.access(entries * page, 64, True, first.finish_ns)
            results[mode] = conflict.latency_ns
        assert results["persist"] > results["extend"]

    def test_memory_delay_breakdown_accumulates(self):
        hams = controller()
        hams.access(0, 64, False, 0.0)
        breakdown = hams.memory_delay_breakdown()
        assert breakdown["total_ns"] == pytest.approx(
            breakdown["nvdimm_ns"] + breakdown["dma_ns"] + breakdown["ssd_ns"]
            + breakdown["wait_ns"])
        assert breakdown["total_ns"] > 0


class TestIntegrations:
    def test_loose_uses_pcie_and_keeps_ssd_buffer(self):
        hams = controller(integration="loose")
        assert hams.pcie is not None
        assert hams.ssd.buffer.enabled

    def test_tight_uses_ddr_and_removes_ssd_buffer(self):
        hams = controller(integration="tight")
        assert hams.pcie is None
        assert hams.register_interface is not None
        assert not hams.ssd.buffer.enabled

    def test_tight_miss_has_lower_dma_share(self):
        """Figure 10a / 18: the PCIe hop makes the loose design's DMA share larger."""
        loose = controller(integration="loose")
        tight = controller(integration="tight")
        now_loose = now_tight = 0.0
        page = loose.mos_page_bytes
        for index in range(12):
            now_loose = loose.access(index * page, 64, False, now_loose).finish_ns
            now_tight = tight.access(index * page, 64, False, now_tight).finish_ns
        assert loose.dma_overhead_fraction() > tight.dma_overhead_fraction()

    def test_tight_miss_faster_than_loose(self):
        loose = controller(integration="loose")
        tight = controller(integration="tight")
        loose_miss = loose.access(0, 64, False, 0.0)
        tight_miss = tight.access(0, 64, False, 0.0)
        assert tight_miss.latency_ns <= loose_miss.latency_ns


class TestPageSizeSensitivity:
    def test_small_pages_have_cheaper_misses(self):
        small = controller(mos_page=KB(4))
        large = controller(mos_page=KB(1024))
        small_miss = small.access(0, 64, False, 0.0)
        large_miss = large.access(0, 64, False, 0.0)
        # The critical chunk keeps the stall similar, but the persist-mode
        # full transfer (and the background totals) differ; compare persist.
        small_p = controller(mos_page=KB(4), mode="persist")
        large_p = controller(mos_page=KB(1024), mode="persist")
        assert (large_p.access(0, 64, False, 0.0).latency_ns
                > small_p.access(0, 64, False, 0.0).latency_ns)
        assert small_miss.latency_ns <= large_miss.latency_ns * 10


class TestHitRateAndStatistics:
    def test_sequential_scan_hit_rate_is_high(self):
        hams = controller()
        now = 0.0
        line = 64
        for index in range(512):
            now = hams.access(index * line, line, False, now).finish_ns
        # 128 KB pages hold 2048 lines, so a 512-line scan misses once.
        assert hams.hit_rate > 0.99

    def test_statistics_keys(self):
        hams = controller()
        hams.access(0, 64, False, 0.0)
        stats = hams.statistics()
        assert stats["accesses"] == 1
        assert stats["fills"] == 1
        assert "engine.commands_issued" in stats
        assert "hazards.evictions_cloned" in stats


class TestPowerFailure:
    def test_power_failure_and_recovery_roundtrip(self):
        hams = controller()
        hams.access(0, 64, is_write=True, at_ns=0.0)
        down_at = hams.power_failure(at_ns=1_000_000.0)
        assert down_at >= 1_000_000.0
        report = hams.recover(at_ns=down_at)
        assert report.consistent
        assert hams.persistency.power_failures == 1

    def test_access_after_recovery_still_works(self):
        hams = controller()
        first = hams.access(0, 64, True, 0.0)
        hams.power_failure(at_ns=first.finish_ns)
        hams.recover(at_ns=first.finish_ns + 1e6)
        again = hams.access(0, 64, False, first.finish_ns + 2e6)
        assert again.finish_ns > 0


class TestPropertyBased:
    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=255),
                              st.booleans()),
                    min_size=1, max_size=60))
    def test_time_monotonicity_and_consistency(self, accesses):
        """Completion times never precede submission and hits+misses add up."""
        hams = controller()
        line = 64
        now = 0.0
        for slot, is_write in accesses:
            result = hams.access(slot * line, line, is_write, now)
            assert result.finish_ns >= now
            assert result.latency_ns >= 0
            now = result.finish_ns
        assert hams.tag_array.hits + hams.tag_array.misses == len(accesses)
