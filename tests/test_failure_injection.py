"""Failure-injection scenarios for the persistency design (Sections IV-B, V-C).

These tests crash the system at awkward points — dirty data everywhere,
commands in flight, repeated outages — and check that the recovery protocol
always converges to a consistent state: every journalled command replayed,
queue pointers consistent, the MoS space serviceable again.
"""

from __future__ import annotations

import pytest

from repro.config import default_config
from repro.core.hams_controller import HAMSController
from repro.nvme.commands import build_read, build_write
from repro.units import KB
from repro.workloads.registry import ExperimentScale, scale_system_config


def make_controller(mode: str = "extend") -> HAMSController:
    config = scale_system_config(default_config(),
                                 ExperimentScale(capacity_scale=1 / 512))
    config = config.with_hams(integration="tight", mode=mode)
    controller = HAMSController(config)
    controller.ssd.precondition(0, min(controller.ssd.logical_pages, 2048))
    return controller


def dirty_working_set(controller: HAMSController, pages: int) -> float:
    """Write one line in each of *pages* distinct MoS pages; returns the time."""
    now = 0.0
    for index in range(pages):
        result = controller.access(index * controller.mos_page_bytes, 64,
                                   is_write=True, at_ns=now)
        now = result.finish_ns
    return now


class TestCrashWithDirtyData:
    def test_recovery_with_many_dirty_entries(self):
        controller = make_controller()
        now = dirty_working_set(controller, 32)
        assert controller.tag_array.dirty_count() == 32
        down = controller.power_failure(at_ns=now)
        report = controller.recover(at_ns=down)
        assert report.consistent
        assert controller.queue_pair.pointers_consistent

    def test_recovery_replays_every_journalled_command(self):
        controller = make_controller()
        now = dirty_working_set(controller, 8)
        pending = []
        for index in range(5):
            command = build_write(
                lba=controller.address_manager.lba_of(index),
                length_bytes=KB(128),
                prp=controller.address_manager.pinned_region_base)
            controller.queue_pair.sq.submit(command)
            command.mark_submitted(now)
            pending.append(command)
        down = controller.power_failure(at_ns=now)
        report = controller.recover(at_ns=down)
        assert report.pending_commands_found == len(pending)
        assert report.commands_reissued == len(pending)

    def test_mixed_reads_and_writes_in_flight(self):
        controller = make_controller()
        now = dirty_working_set(controller, 4)
        read = build_read(lba=controller.address_manager.lba_of(10),
                          length_bytes=KB(128), prp=0)
        write = build_write(lba=controller.address_manager.lba_of(2),
                            length_bytes=KB(128), prp=0)
        for command in (read, write):
            controller.queue_pair.sq.submit(command)
            command.mark_submitted(now)
        down = controller.power_failure(at_ns=now)
        report = controller.recover(at_ns=down)
        assert report.commands_reissued == 2


class TestRepeatedOutages:
    def test_three_failure_recovery_cycles(self):
        controller = make_controller()
        now = 0.0
        for cycle in range(3):
            result = controller.access(cycle * controller.mos_page_bytes, 64,
                                       is_write=True, at_ns=now)
            now = result.finish_ns
            down = controller.power_failure(at_ns=now)
            report = controller.recover(at_ns=down)
            assert report.consistent
            now = down + report.total_recovery_ns
        assert controller.persistency.power_failures == 3
        assert controller.persistency.recoveries == 3

    def test_service_resumes_after_each_recovery(self):
        controller = make_controller()
        now = dirty_working_set(controller, 4)
        down = controller.power_failure(at_ns=now)
        report = controller.recover(at_ns=down)
        resume_at = down + report.total_recovery_ns
        result = controller.access(0, 64, is_write=False, at_ns=resume_at)
        assert result.finish_ns >= resume_at
        # The previously written page is still resident in the MoS cache.
        assert result.hit


class TestPersistModeGuarantees:
    def test_persist_mode_has_no_background_evictions_to_lose(self):
        """Persist mode (FUA) leaves nothing buffered when the plug is pulled."""
        controller = make_controller(mode="persist")
        entries = controller.tag_array.entries_count
        now = 0.0
        # Force conflict evictions: two pages mapping to the same index.
        for index in (0, entries):
            result = controller.access(index * controller.mos_page_bytes, 64,
                                       is_write=True, at_ns=now)
            now = result.finish_ns
        # Every eviction went through the serialised FUA path, so the pending
        # journal scan finds nothing outstanding.
        assert controller.persistency.pending_commands() == []
        down = controller.power_failure(at_ns=now)
        report = controller.recover(at_ns=down)
        assert report.pending_commands_found == 0

    def test_extend_mode_tracks_background_work(self):
        controller = make_controller(mode="extend")
        entries = controller.tag_array.entries_count
        now = 0.0
        for index in (0, entries):
            result = controller.access(index * controller.mos_page_bytes, 64,
                                       is_write=True, at_ns=now)
            now = result.finish_ns
        assert controller.background_flash_programs > 0


class TestSSDSupercap:
    def test_buffered_writes_survive_via_supercap_flush(self):
        controller = make_controller()
        ssd = controller.ssd
        # Write directly into the device buffer path (loose-style traffic).
        ssd.write(0, KB(4), at_ns=0.0)
        ssd.write(KB(4), KB(4), at_ns=100.0)
        dirty_before = ssd.buffer.dirty_pages
        controller.power_failure(at_ns=1_000.0)
        assert ssd.buffer.dirty_pages == 0 or dirty_before == 0
        controller.recover(at_ns=2_000.0)
