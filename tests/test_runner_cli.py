"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.runner import EXPERIMENT_SCHEMA, get_preset, preset_names
from repro.runner.cli import build_parser, main
from repro.runner.presets import SMOKE_SCALE


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.experiments == []
        assert not args.smoke
        assert args.workers is None
        assert not args.no_cache

    def test_run_flags(self):
        args = build_parser().parse_args([
            "run", "fig16", "smoke", "--workers", "4", "--smoke",
            "--no-cache", "--force", "--max-accesses", "512",
            "--seed", "7"])
        assert args.experiments == ["fig16", "smoke"]
        assert args.workers == 4
        assert args.smoke and args.no_cache and args.force
        assert args.max_accesses == 512
        assert args.seed == 7

    def test_report_and_list_subcommands(self):
        assert build_parser().parse_args(["list"]).command == "list"
        args = build_parser().parse_args(["report", "fig16"])
        assert args.experiments == ["fig16"]

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestPresets:
    def test_known_presets_exist(self):
        names = preset_names()
        for expected in ("fig16", "fig17", "fig18", "fig19", "smoke"):
            assert expected in names

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_preset("fig99")

    def test_fig16_covers_full_matrix(self):
        preset = get_preset("fig16")
        assert preset.run_count == 11 * 12

    def test_smoke_scale_is_tiny(self):
        assert SMOKE_SCALE.max_accesses <= 1000


class TestListCommand:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for token in ("hams-TE", "mmap", "seqRd", "update", "fig16",
                      "smoke"):
            assert token in out


class TestRunCommand:
    def test_smoke_run_writes_artifact(self, tmp_path, capsys):
        status = main(["run", "--smoke", "--workers", "1",
                       "--output-dir", str(tmp_path), "--quiet"])
        assert status == 0
        artifact = tmp_path / "smoke.json"
        assert artifact.is_file()
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["schema"] == EXPERIMENT_SCHEMA
        assert payload["experiment"] == "smoke"
        assert payload["meta"]["workers"] == 1
        assert len(payload["runs"]) == get_preset("smoke").run_count
        assert (tmp_path / "cache").is_dir()
        out = capsys.readouterr().out
        assert "smoke:" in out and "0 cached" in out

    def test_second_run_hits_cache(self, tmp_path, capsys):
        main(["run", "--smoke", "--workers", "1",
              "--output-dir", str(tmp_path), "--quiet"])
        capsys.readouterr()
        main(["run", "--smoke", "--workers", "1",
              "--output-dir", str(tmp_path), "--quiet"])
        out = capsys.readouterr().out
        runs = get_preset("smoke").run_count
        assert f"{runs} cached" in out

    def test_custom_matrix(self, tmp_path):
        status = main(["run", "--smoke", "--workers", "1", "--no-cache",
                       "--platforms", "mmap", "hams-TE",
                       "--workloads", "seqRd",
                       "--output-dir", str(tmp_path), "--quiet"])
        assert status == 0
        payload = json.loads((tmp_path / "custom.json")
                             .read_text(encoding="utf-8"))
        keys = {(run["platform_key"], run["workload_key"])
                for run in payload["runs"]}
        assert keys == {("mmap", "seqRd"), ("hams-TE", "seqRd")}

    def test_platforms_without_workloads_is_an_error(self, tmp_path,
                                                     capsys):
        status = main(["run", "--smoke", "--platforms", "mmap",
                       "--output-dir", str(tmp_path)])
        assert status == 2
        assert "must be given together" in capsys.readouterr().err

    def test_unknown_experiment_is_an_error(self, tmp_path, capsys):
        status = main(["run", "fig99", "--output-dir", str(tmp_path)])
        assert status == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestReportCommand:
    def test_report_round_trip(self, tmp_path, capsys):
        main(["run", "--smoke", "--workers", "1",
              "--output-dir", str(tmp_path), "--quiet"])
        capsys.readouterr()
        status = main(["report", "--output-dir", str(tmp_path), "smoke"])
        assert status == 0
        out = capsys.readouterr().out
        assert "throughput (ops/s)" in out
        assert "mean speedup" in out
        assert "hams-TE" in out

    def test_report_without_artifacts_fails(self, tmp_path, capsys):
        status = main(["report", "--output-dir", str(tmp_path)])
        assert status == 1
        assert "no experiment artifacts" in capsys.readouterr().err

    def test_report_glob_skips_foreign_json(self, tmp_path, capsys):
        """BENCH_<figure>.json records in the same directory are ignored."""
        main(["run", "--smoke", "--workers", "1",
              "--output-dir", str(tmp_path), "--quiet"])
        (tmp_path / "BENCH_fig16.json").write_text(
            json.dumps({"schema": "repro.bench-figure/1", "tables": {}}),
            encoding="utf-8")
        (tmp_path / "garbage.json").write_text("{not json",
                                               encoding="utf-8")
        capsys.readouterr()
        status = main(["report", "--output-dir", str(tmp_path)])
        out = capsys.readouterr()
        assert status == 0
        assert "smoke" in out.out
        assert out.err == ""

    def test_explicitly_named_bad_artifact_is_an_error(self, tmp_path,
                                                       capsys):
        (tmp_path / "broken.json").write_text(
            json.dumps({"schema": EXPERIMENT_SCHEMA}), encoding="utf-8")
        status = main(["report", "--output-dir", str(tmp_path), "broken"])
        assert status == 1
        assert "cannot read artifact" in capsys.readouterr().err


class TestWorkerEnv:
    def test_malformed_repro_workers_is_a_clean_cli_error(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        status = main(["run", "--smoke", "--output-dir", str(tmp_path)])
        assert status == 2
        assert "REPRO_WORKERS must be an integer" in \
            capsys.readouterr().err

    def test_repro_workers_env_resolves(self, monkeypatch):
        from repro.runner import resolve_worker_count
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_worker_count() == 3
        monkeypatch.setenv("REPRO_WORKERS", "bad")
        with pytest.raises(ValueError, match="must be an integer"):
            resolve_worker_count()
