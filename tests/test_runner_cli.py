"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.runner import EXPERIMENT_SCHEMA, get_preset, preset_names
from repro.runner.cli import build_parser, main
from repro.runner.presets import SMOKE_SCALE


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.experiments == []
        assert not args.smoke
        assert args.workers is None
        assert not args.no_cache

    def test_run_flags(self):
        args = build_parser().parse_args([
            "run", "fig16", "smoke", "--workers", "4", "--smoke",
            "--no-cache", "--force", "--max-accesses", "512",
            "--seed", "7"])
        assert args.experiments == ["fig16", "smoke"]
        assert args.workers == 4
        assert args.smoke and args.no_cache and args.force
        assert args.max_accesses == 512
        assert args.seed == 7

    def test_report_and_list_subcommands(self):
        assert build_parser().parse_args(["list"]).command == "list"
        args = build_parser().parse_args(["report", "fig16"])
        assert args.experiments == ["fig16"]

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestPresets:
    def test_known_presets_exist(self):
        names = preset_names()
        for expected in ("fig16", "fig17", "fig18", "fig19", "smoke"):
            assert expected in names

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_preset("fig99")

    def test_fig16_covers_full_matrix(self):
        preset = get_preset("fig16")
        assert preset.run_count == 11 * 12

    def test_smoke_scale_is_tiny(self):
        assert SMOKE_SCALE.max_accesses <= 1000


class TestListCommand:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for token in ("hams-TE", "mmap", "seqRd", "update", "fig16",
                      "smoke"):
            assert token in out


class TestRunCommand:
    def test_smoke_run_writes_artifact(self, tmp_path, capsys):
        status = main(["run", "--smoke", "--workers", "1",
                       "--output-dir", str(tmp_path), "--quiet"])
        assert status == 0
        artifact = tmp_path / "smoke.json"
        assert artifact.is_file()
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["schema"] == EXPERIMENT_SCHEMA
        assert payload["experiment"] == "smoke"
        assert payload["meta"]["workers"] == 1
        assert len(payload["runs"]) == get_preset("smoke").run_count
        assert (tmp_path / "cache").is_dir()
        out = capsys.readouterr().out
        assert "smoke:" in out and "0 cached" in out

    def test_second_run_hits_cache(self, tmp_path, capsys):
        main(["run", "--smoke", "--workers", "1",
              "--output-dir", str(tmp_path), "--quiet"])
        capsys.readouterr()
        main(["run", "--smoke", "--workers", "1",
              "--output-dir", str(tmp_path), "--quiet"])
        out = capsys.readouterr().out
        runs = get_preset("smoke").run_count
        assert f"{runs} cached" in out

    def test_custom_matrix(self, tmp_path):
        status = main(["run", "--smoke", "--workers", "1", "--no-cache",
                       "--platforms", "mmap", "hams-TE",
                       "--workloads", "seqRd",
                       "--output-dir", str(tmp_path), "--quiet"])
        assert status == 0
        payload = json.loads((tmp_path / "custom.json")
                             .read_text(encoding="utf-8"))
        keys = {(run["platform_key"], run["workload_key"])
                for run in payload["runs"]}
        assert keys == {("mmap", "seqRd"), ("hams-TE", "seqRd")}

    def test_executor_tiers_write_identical_runs(self, tmp_path, capsys):
        """`repro run --executor X` is bit-identical across tiers."""
        serialised = {}
        for executor in ("serial", "pool", "sharded"):
            status = main(["run", "--workers", "1", "--no-cache", "--quiet",
                           "--executor", executor,
                           "--platforms", "mmap", "oracle",
                           "--workloads", "seqRd",
                           "--output-dir", str(tmp_path / executor)]
                          + TINY_FLAGS)
            assert status == 0
            assert f"({executor} executor" in capsys.readouterr().out
            payload = json.loads((tmp_path / executor / "custom.json")
                                 .read_text(encoding="utf-8"))
            assert payload["meta"]["executor"] == executor
            serialised[executor] = json.dumps(payload["runs"],
                                              sort_keys=True)
        assert serialised["pool"] == serialised["serial"]
        assert serialised["sharded"] == serialised["serial"]

    def test_run_writes_events_artifact(self, tmp_path):
        main(["run", "--workers", "1", "--no-cache", "--quiet",
              "--platforms", "mmap", "--workloads", "seqRd",
              "--output-dir", str(tmp_path)] + TINY_FLAGS)
        lines = [json.loads(line) for line in
                 (tmp_path / "custom.events.jsonl")
                 .read_text(encoding="utf-8").splitlines()]
        assert lines[0]["schema"] == "repro.events/1"
        assert lines[0]["kind"] == "submitted"
        assert [line["kind"] for line in lines].count("finish") == 1

    def test_run_progress_ticker(self, tmp_path, capsys):
        status = main(["run", "--workers", "1", "--no-cache", "--quiet",
                       "--progress",
                       "--platforms", "mmap", "--workloads", "seqRd",
                       "--output-dir", str(tmp_path)] + TINY_FLAGS)
        assert status == 0
        err = capsys.readouterr().err
        assert "1/1 runs" in err and "elapsed" in err

    def test_run_shards_implies_sharded_executor(self, tmp_path, capsys):
        status = main(["run", "--workers", "1", "--quiet",
                       "--shards", "2", "--spool", str(tmp_path / "spool"),
                       "--platforms", "mmap", "oracle",
                       "--workloads", "seqRd",
                       "--output-dir", str(tmp_path)] + TINY_FLAGS)
        assert status == 0
        assert "(sharded executor" in capsys.readouterr().out
        assert len(list((tmp_path / "spool" / "results")
                        .glob("shard-*.json"))) == 2

    def test_platforms_without_workloads_is_an_error(self, tmp_path,
                                                     capsys):
        status = main(["run", "--smoke", "--platforms", "mmap",
                       "--output-dir", str(tmp_path)])
        assert status == 2
        assert "must be given together" in capsys.readouterr().err

    def test_unknown_experiment_is_an_error(self, tmp_path, capsys):
        status = main(["run", "fig99", "--output-dir", str(tmp_path)])
        assert status == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestReportCommand:
    def test_report_round_trip(self, tmp_path, capsys):
        main(["run", "--smoke", "--workers", "1",
              "--output-dir", str(tmp_path), "--quiet"])
        capsys.readouterr()
        status = main(["report", "--output-dir", str(tmp_path), "smoke"])
        assert status == 0
        out = capsys.readouterr().out
        assert "throughput (ops/s)" in out
        assert "mean speedup" in out
        assert "hams-TE" in out

    def test_report_without_artifacts_fails(self, tmp_path, capsys):
        status = main(["report", "--output-dir", str(tmp_path)])
        assert status == 1
        assert "no experiment artifacts" in capsys.readouterr().err

    def test_report_glob_skips_foreign_json(self, tmp_path, capsys):
        """BENCH_<figure>.json records in the same directory are ignored."""
        main(["run", "--smoke", "--workers", "1",
              "--output-dir", str(tmp_path), "--quiet"])
        (tmp_path / "BENCH_fig16.json").write_text(
            json.dumps({"schema": "repro.bench-figure/1", "tables": {}}),
            encoding="utf-8")
        (tmp_path / "garbage.json").write_text("{not json",
                                               encoding="utf-8")
        capsys.readouterr()
        status = main(["report", "--output-dir", str(tmp_path)])
        out = capsys.readouterr()
        assert status == 0
        assert "smoke" in out.out
        assert out.err == ""

    def test_explicitly_named_bad_artifact_is_an_error(self, tmp_path,
                                                       capsys):
        (tmp_path / "broken.json").write_text(
            json.dumps({"schema": EXPERIMENT_SCHEMA}), encoding="utf-8")
        status = main(["report", "--output-dir", str(tmp_path), "broken"])
        assert status == 1
        assert "cannot read artifact" in capsys.readouterr().err


#: Shared tiny-scale knobs so every CLI shard run finishes in well under a
#: second: the smoke scale shrunk further via the plan/run scale flags.
TINY_FLAGS = ["--smoke", "--min-accesses", "100", "--max-accesses", "200"]


class TestShardCLI:
    def _plan(self, spool, shards=2):
        return main(["shard", "plan", "--shards", str(shards),
                     "--spool", str(spool),
                     "--platforms", "mmap", "hams-TE",
                     "--workloads", "seqRd"] + TINY_FLAGS)

    def test_plan_work_status_merge_round_trip(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        assert self._plan(spool) == 0
        out = capsys.readouterr().out
        assert "planned 2 runs into 2 shard(s)" in out
        assert "experiment id: sha256:" in out
        assert len(list((spool / "pending").glob("shard-*.json"))) == 2

        # An incomplete spool reports non-zero so scripts can wait on it.
        assert main(["shard", "status", "--spool", str(spool)]) == 3
        capsys.readouterr()

        assert main(["shard", "work", "--spool", str(spool),
                     "--workers", "1", "--host", "worker-a"]) == 0
        out = capsys.readouterr().out
        assert out.count("shard result ->") == 2

        assert main(["shard", "status", "--spool", str(spool)]) == 0
        assert "2 done, 0 running, 0 pending" in capsys.readouterr().out

        assert main(["shard", "merge", "--spool", str(spool),
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "merged 2 runs from 2 shard(s) (hosts worker-a)" in out
        payload = json.loads((spool / "custom.json")
                             .read_text(encoding="utf-8"))
        assert payload["schema"] == EXPERIMENT_SCHEMA
        assert payload["meta"]["sharded"]["shard_count"] == 2
        assert payload["meta"]["sharded"]["hosts"] == ["worker-a",
                                                       "worker-a"]

    def test_merged_artifact_matches_unsharded_run(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        self._plan(spool)
        main(["shard", "work", "--spool", str(spool), "--workers", "1"])
        main(["shard", "merge", "--spool", str(spool), "--quiet"])
        main(["run", "--workers", "1", "--no-cache", "--quiet",
              "--output-dir", str(tmp_path / "direct"),
              "--platforms", "mmap", "hams-TE",
              "--workloads", "seqRd"] + TINY_FLAGS)
        capsys.readouterr()
        sharded = json.loads((spool / "custom.json")
                             .read_text(encoding="utf-8"))
        direct = json.loads((tmp_path / "direct" / "custom.json")
                            .read_text(encoding="utf-8"))
        assert json.dumps(sharded["runs"], sort_keys=True) == \
            json.dumps(direct["runs"], sort_keys=True)
        assert sharded["config_hash"] == direct["config_hash"]
        # ... and `repro report --diff` agrees at threshold zero.
        assert main(["report", "--diff",
                     str(tmp_path / "direct" / "custom.json"),
                     str(spool / "custom.json"),
                     "--threshold", "0"]) == 0

    def test_plan_balance_cost_and_status_watch(self, tmp_path, capsys):
        """Satellites: cost-balanced planning + the watch ticker."""
        spool = tmp_path / "spool"
        assert main(["shard", "plan", "--shards", "2",
                     "--spool", str(spool), "--balance", "cost",
                     "--platforms", "mmap", "hams-TE",
                     "--workloads", "seqRd"] + TINY_FLAGS) == 0
        out = capsys.readouterr().out
        assert "balanced by cost" in out
        assert "estimated per-shard cost" in out

        assert main(["shard", "work", "--spool", str(spool),
                     "--workers", "1", "--host", "worker-a"]) == 0
        capsys.readouterr()
        # Per-run progress records landed next to the shard artifacts.
        progress = sorted((spool / "progress").glob("*.jsonl"))
        assert progress
        records = [json.loads(line)
                   for path in progress
                   for line in path.read_text(encoding="utf-8").splitlines()]
        assert {record["index"] for record in records} == {0, 1}
        assert all(record["schema"] == "repro.events/1"
                   for record in records)

        # --watch on a completed spool prints the run tally and exits 0.
        assert main(["shard", "status", "--spool", str(spool),
                     "--watch", "--interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "runs 2/2" in out
        assert "2 done, 0 running, 0 pending" in out

        assert main(["shard", "merge", "--spool", str(spool),
                     "--quiet"]) == 0

    def test_status_watch_on_empty_spool_warns_instead_of_silence(
            self, tmp_path):
        """--watch on a missing/empty spool must say so, not spin mutely."""
        import os
        import subprocess
        import sys as _sys
        import time as _time

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            __import__("pathlib").Path(repro.__file__).parent.parent)
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "shard", "status",
             "--spool", str(tmp_path / "typo"), "--watch",
             "--interval", "0.05"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            text=True)
        try:
            _time.sleep(1.0)
            assert proc.poll() is None  # still watching, not crashed
        finally:
            proc.kill()
        _, err = proc.communicate()
        assert "no shards found" in err
        assert err.count("no shards found") == 1  # warned once, not spammed

    def test_work_explicit_manifest_is_the_recovery_path(self, tmp_path,
                                                         capsys):
        spool = tmp_path / "spool"
        self._plan(spool)
        manifest = sorted((spool / "pending").glob("shard-*.json"))[0]
        assert main(["shard", "work", "--spool", str(spool),
                     "--workers", "1", str(manifest)]) == 0
        capsys.readouterr()
        assert not manifest.exists()
        assert (spool / "results" / manifest.name).is_file()

    def test_merge_experiment_selector_on_a_shared_spool(self, tmp_path,
                                                         capsys):
        spool = tmp_path / "spool"
        # Two plans share one spool: the named smoke preset and an ad-hoc
        # custom matrix.
        main(["shard", "plan", "--shards", "1", "--spool", str(spool),
              "--platforms", "mmap", "--workloads", "seqRd"] + TINY_FLAGS)
        main(["shard", "plan", "smoke", "--shards", "1",
              "--spool", str(spool)] + TINY_FLAGS)
        main(["shard", "work", "--spool", str(spool), "--workers", "1"])
        capsys.readouterr()
        # Unfiltered merge cannot pick a plan; the selector can.
        assert main(["shard", "merge", "--spool", str(spool)]) == 1
        assert "disagree" in capsys.readouterr().err
        assert main(["shard", "merge", "--spool", str(spool),
                     "--experiment", "custom", "--quiet"]) == 0
        capsys.readouterr()
        assert main(["shard", "merge", "--spool", str(spool),
                     "--experiment", "smoke", "--quiet"]) == 0
        capsys.readouterr()
        assert (spool / "custom.json").is_file()
        assert (spool / "smoke.json").is_file()
        assert main(["shard", "merge", "--spool", str(spool),
                     "--experiment", "nope"]) == 1
        assert "no shard results for experiment" in \
            capsys.readouterr().err
        # The selector also accepts the short experiment-id tag, the only
        # unambiguous handle when plans share a name.
        tag = sorted((spool / "results").glob("shard-*.json"))[0] \
            .name.split("-")[1]
        assert main(["shard", "merge", "--spool", str(spool),
                     "--experiment", tag, "--quiet",
                     "--output", str(tmp_path / "by-tag.json")]) == 0
        capsys.readouterr()
        assert (tmp_path / "by-tag.json").is_file()

    def test_merge_incomplete_spool_fails(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        self._plan(spool)
        main(["shard", "work", "--spool", str(spool), "--workers", "1",
              "--max-shards", "1"])
        capsys.readouterr()
        assert main(["shard", "merge", "--spool", str(spool)]) == 1
        assert "missing shard(s)" in capsys.readouterr().err

    def test_plan_without_experiment_is_an_error(self, tmp_path, capsys):
        status = main(["shard", "plan", "--shards", "2",
                       "--spool", str(tmp_path / "spool")])
        assert status == 2
        assert "exactly one experiment" in capsys.readouterr().err

    def test_plan_rejects_preset_plus_adhoc_matrix(self, tmp_path, capsys):
        status = main(["shard", "plan", "smoke", "--shards", "2",
                       "--spool", str(tmp_path / "spool"),
                       "--platforms", "mmap", "--workloads", "seqRd"])
        assert status == 2
        assert "not both" in capsys.readouterr().err

    def test_work_on_empty_spool_says_so(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        self._plan(spool)
        main(["shard", "work", "--spool", str(spool), "--workers", "1"])
        capsys.readouterr()
        assert main(["shard", "work", "--spool", str(spool),
                     "--workers", "1"]) == 0
        assert "no pending shards" in capsys.readouterr().out

    def test_status_on_missing_spool_fails(self, tmp_path, capsys):
        assert main(["shard", "status",
                     "--spool", str(tmp_path / "nowhere")]) == 1
        assert "no shards found" in capsys.readouterr().err


class TestReportDiffGlobs:
    def _two_artifacts(self, tmp_path):
        main(["run", "--workers", "1", "--no-cache", "--quiet",
              "--output-dir", str(tmp_path),
              "--platforms", "mmap", "--workloads", "seqRd"] + TINY_FLAGS)

    def test_diff_accepts_glob_patterns(self, tmp_path, capsys):
        self._two_artifacts(tmp_path)
        capsys.readouterr()
        status = main(["report", "--diff",
                       str(tmp_path / "cust*.json"),
                       str(tmp_path / "*.json"),
                       "--threshold", "0"])
        assert status == 0
        assert "verdict: PASS" in capsys.readouterr().out

    def test_unmatched_pattern_is_an_error(self, tmp_path, capsys):
        self._two_artifacts(tmp_path)
        capsys.readouterr()
        status = main(["report", "--diff",
                       str(tmp_path / "nope*.json"),
                       str(tmp_path / "custom.json")])
        assert status == 2
        assert "no artifact matches" in capsys.readouterr().err

    def test_ambiguous_pattern_is_an_error(self, tmp_path, capsys):
        self._two_artifacts(tmp_path)
        (tmp_path / "custom2.json").write_text(
            (tmp_path / "custom.json").read_text(encoding="utf-8"),
            encoding="utf-8")
        capsys.readouterr()
        status = main(["report", "--diff",
                       str(tmp_path / "custom*.json"),
                       str(tmp_path / "custom.json")])
        assert status == 2
        assert "ambiguous" in capsys.readouterr().err


class TestListArtifacts:
    def test_list_artifacts_prints_shard_provenance(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        main(["shard", "plan", "--shards", "2", "--spool", str(spool),
              "--platforms", "mmap", "hams-TE",
              "--workloads", "seqRd"] + TINY_FLAGS)
        main(["shard", "work", "--spool", str(spool), "--workers", "1",
              "--host", "worker-a"])
        main(["shard", "merge", "--spool", str(spool), "--quiet"])
        capsys.readouterr()
        assert main(["list", "--artifacts", str(spool)]) == 0
        out = capsys.readouterr().out
        assert "repro.experiment/1" in out
        assert "[merged from 2 shard(s), hosts worker-a]" in out
        assert "repro.shard-result/1" in out
        assert "[shard 0/2, host worker-a]" in out

    def test_list_artifacts_empty_directory_fails(self, tmp_path, capsys):
        assert main(["list", "--artifacts", str(tmp_path)]) == 1
        assert "no artifacts" in capsys.readouterr().err


class TestWorkerEnv:
    def test_malformed_repro_workers_is_a_clean_cli_error(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        status = main(["run", "--smoke", "--output-dir", str(tmp_path)])
        assert status == 2
        assert "REPRO_WORKERS must be an integer" in \
            capsys.readouterr().err

    def test_repro_workers_env_resolves(self, monkeypatch):
        from repro.runner import resolve_worker_count
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_worker_count() == 3
        monkeypatch.setenv("REPRO_WORKERS", "bad")
        with pytest.raises(ValueError, match="must be an integer"):
            resolve_worker_count()
