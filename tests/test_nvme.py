"""NVMe protocol substrate: commands, queue rings, PRP pool, controller."""

import pytest

from repro.config import FlashGeometry, NVMeConfig, PCIeConfig, SSDConfig
from repro.flash.ssd import SSD
from repro.interconnect.pcie import PCIeLink
from repro.nvme.commands import (
    NVMeCommand,
    NVMeCompletion,
    NVMeOpcode,
    build_read,
    build_write,
)
from repro.nvme.controller import NVMeController
from repro.nvme.prp import PRPPool, PRPPoolExhausted
from repro.nvme.queues import CompletionQueue, QueueFullError, QueuePair, SubmissionQueue
from repro.units import KB, MB


class TestCommands:
    def test_build_read(self):
        command = build_read(lba=16, length_bytes=KB(4), prp=0x1000)
        assert command.opcode is NVMeOpcode.READ
        assert not command.is_write
        assert command.byte_offset == 16 * 512

    def test_build_write_fua(self):
        command = build_write(lba=0, length_bytes=KB(4), prp=0, fua=True)
        assert command.is_write
        assert command.fua

    def test_journal_tag_lifecycle(self):
        command = build_read(lba=0, length_bytes=KB(4), prp=0)
        assert command.journal_tag == 0
        command.mark_submitted(100.0)
        assert command.journal_tag == 1
        assert command.is_pending
        command.mark_completed(200.0)
        assert command.journal_tag == 0
        assert not command.is_pending

    def test_command_ids_are_unique(self):
        first = build_read(lba=0, length_bytes=KB(4), prp=0)
        second = build_read(lba=0, length_bytes=KB(4), prp=0)
        assert first.command_id != second.command_id

    def test_validation(self):
        with pytest.raises(ValueError):
            NVMeCommand(opcode=NVMeOpcode.READ, lba=-1, length_bytes=1, prp=0)
        with pytest.raises(ValueError):
            NVMeCommand(opcode=NVMeOpcode.READ, lba=0, length_bytes=0, prp=0)
        with pytest.raises(ValueError):
            NVMeCommand(opcode=NVMeOpcode.READ, lba=0, length_bytes=1, prp=0,
                        journal_tag=2)


class TestQueues:
    def test_submit_and_fetch_fifo(self):
        sq = SubmissionQueue(depth=8)
        first = build_read(lba=0, length_bytes=KB(4), prp=0)
        second = build_read(lba=8, length_bytes=KB(4), prp=0)
        sq.submit(first)
        sq.submit(second)
        assert sq.fetch() is first
        assert sq.fetch() is second
        assert sq.fetch() is None

    def test_queue_full(self):
        sq = SubmissionQueue(depth=3)
        sq.submit(build_read(lba=0, length_bytes=KB(4), prp=0))
        sq.submit(build_read(lba=0, length_bytes=KB(4), prp=0))
        with pytest.raises(QueueFullError):
            sq.submit(build_read(lba=0, length_bytes=KB(4), prp=0))

    def test_doorbell_counter(self):
        sq = SubmissionQueue(depth=8)
        sq.ring_doorbell()
        sq.ring_doorbell()
        assert sq.doorbell_rings == 2

    def test_completion_queue_interrupts(self):
        cq = CompletionQueue(depth=8)
        cq.post(NVMeCompletion(command_id=1))
        assert cq.interrupts_raised == 1
        completion = cq.reap()
        assert completion is not None and completion.command_id == 1

    def test_pointer_consistency_detects_inflight(self):
        pair = QueuePair.create(depth=8)
        assert pair.pointers_consistent
        command = build_write(lba=0, length_bytes=KB(4), prp=0)
        pair.sq.submit(command)
        assert not pair.pointers_consistent

    def test_in_flight_commands_follow_journal_tags(self):
        pair = QueuePair.create(depth=8)
        command = build_write(lba=0, length_bytes=KB(4), prp=0)
        pair.sq.submit(command)
        assert pair.in_flight_commands() == []
        command.mark_submitted(0.0)
        assert pair.in_flight_commands() == [command]
        command.mark_completed(10.0)
        assert pair.in_flight_commands() == []


class TestPRPPool:
    def test_clone_and_release(self):
        pool = PRPPool(MB(1), KB(128))
        entry = pool.clone(source_page=7, command_id=11)
        assert entry.in_use
        assert pool.in_use == 1
        assert pool.entry_for(11) is entry
        pool.release(11)
        assert pool.in_use == 0
        assert pool.entry_for(11) is None

    def test_exhaustion(self):
        pool = PRPPool(KB(256), KB(128))  # two entries
        pool.clone(0, 1)
        pool.clone(1, 2)
        with pytest.raises(PRPPoolExhausted):
            pool.clone(2, 3)

    def test_release_unknown_command_is_noop(self):
        pool = PRPPool(MB(1), KB(128))
        pool.release(999)

    def test_outstanding_entries(self):
        pool = PRPPool(MB(1), KB(128))
        pool.clone(0, 1)
        pool.clone(1, 2)
        pool.release(1)
        outstanding = pool.outstanding_entries()
        assert len(outstanding) == 1
        assert outstanding[0].command_id == 2

    def test_reset(self):
        pool = PRPPool(MB(1), KB(128))
        pool.clone(0, 1)
        pool.reset()
        assert pool.in_use == 0

    def test_peak_tracking(self):
        pool = PRPPool(MB(1), KB(128))
        pool.clone(0, 1)
        pool.clone(1, 2)
        pool.release(1)
        assert pool.peak_in_use == 2


def _controller() -> NVMeController:
    geometry = FlashGeometry(channels=4, packages_per_channel=1,
                             dies_per_package=2, planes_per_die=1,
                             blocks_per_plane=32, pages_per_block=32)
    ssd = SSD(SSDConfig(name="ull-flash", geometry=geometry,
                        dram_buffer_bytes=MB(1)))
    ssd.precondition(0, 256)
    return NVMeController(ssd, PCIeLink(PCIeConfig()), NVMeConfig())


class TestController:
    def test_read_latency_composition(self):
        controller = _controller()
        result = controller.execute(build_read(lba=0, length_bytes=KB(4), prp=0),
                                    at_ns=0.0)
        assert result.finish_ns == pytest.approx(
            result.submit_ns + result.protocol_ns + result.transfer_ns
            + result.device_ns)
        assert result.protocol_ns > 0
        assert result.transfer_ns > 0

    def test_write_transfers_before_device(self):
        controller = _controller()
        result = controller.execute(
            build_write(lba=0, length_bytes=KB(4), prp=0), at_ns=0.0)
        assert result.command.is_write
        assert result.transfer_ns > 0

    def test_journal_tag_cleared_after_completion(self):
        controller = _controller()
        command = build_read(lba=0, length_bytes=KB(4), prp=0)
        controller.execute(command, at_ns=0.0)
        assert command.journal_tag == 0
        assert command.completed_ns is not None

    def test_drain_processes_all_commands(self):
        controller = _controller()
        pair = QueuePair.create(depth=16)
        for index in range(4):
            pair.sq.submit(build_read(lba=index * 8, length_bytes=KB(4), prp=0))
        results = controller.drain(pair, at_ns=0.0)
        assert len(results) == 4
        assert pair.sq.outstanding == 0
        assert pair.cq.outstanding == 4
        assert controller.commands_executed == 4

    def test_statistics(self):
        controller = _controller()
        controller.execute(build_read(lba=0, length_bytes=KB(4), prp=0), 0.0)
        stats = controller.statistics()
        assert stats["commands_executed"] == 1
        assert stats["bytes_dma"] == KB(4)
