"""Hardware NVMe engine, register interface, and power-failure recovery."""

import pytest

from repro.config import (
    DDRConfig,
    FlashGeometry,
    HAMSConfig,
    NVDIMMConfig,
    NVMeConfig,
    PCIeConfig,
    SSDConfig,
)
from repro.core.nvme_engine import HardwareNVMeEngine
from repro.core.persistency import PersistencyController
from repro.core.register_interface import RegisterInterface
from repro.flash.ssd import SSD
from repro.interconnect.ddr_bus import DDR4Bus
from repro.interconnect.pcie import PCIeLink
from repro.memory.nvdimm import NVDIMM
from repro.nvme.commands import build_write
from repro.nvme.controller import NVMeController
from repro.nvme.queues import QueuePair
from repro.units import KB, MB


def _ssd() -> SSD:
    geometry = FlashGeometry(channels=4, packages_per_channel=1,
                             dies_per_package=2, planes_per_die=1,
                             blocks_per_plane=64, pages_per_block=32)
    ssd = SSD(SSDConfig(name="ull-flash", geometry=geometry,
                        dram_buffer_bytes=MB(1)))
    ssd.precondition(0, 512)
    return ssd


def _engine(mode: str = "extend",
            tight: bool = False) -> HardwareNVMeEngine:
    ssd = _ssd()
    if tight:
        link = RegisterInterface(DDR4Bus(DDRConfig()))
    else:
        link = PCIeLink(PCIeConfig())
    controller = NVMeController(ssd, link, NVMeConfig())
    hams = HAMSConfig(mode=mode,
                      integration="tight" if tight else "loose")
    return HardwareNVMeEngine(controller, QueuePair.create(256), hams,
                              NVMeConfig(),
                              register_interface=link if tight else None)


class TestRegisterInterface:
    def test_transfer_goes_through_lock(self):
        interface = RegisterInterface(DDR4Bus(DDRConfig()))
        record = interface.transfer(KB(128), 0.0)
        assert record.finish_ns > 0
        assert interface.ddr_bus.lock.acquisitions == 1

    def test_deliver_command(self):
        interface = RegisterInterface(DDR4Bus(DDRConfig()))
        record = interface.deliver_command(10.0)
        assert record.size_bytes == 64
        assert interface.commands_delivered == 1

    def test_overhead_smaller_than_pcie(self):
        interface = RegisterInterface(DDR4Bus(DDRConfig()))
        pcie = PCIeLink(PCIeConfig())
        assert (interface.per_transfer_overhead(KB(128))
                < pcie.per_transfer_overhead(KB(128)))

    def test_statistics_include_lock(self):
        interface = RegisterInterface(DDR4Bus(DDRConfig()))
        interface.transfer(KB(4), 0.0)
        assert "lock.acquisitions" in interface.statistics()


class TestHardwareNVMeEngine:
    def test_fill_command_is_read(self):
        engine = _engine()
        command = engine.build_fill(lba=0, length_bytes=KB(128), prp=0)
        assert not command.is_write
        assert not command.fua

    def test_evict_in_persist_mode_uses_fua(self):
        assert _engine("persist").build_evict(0, KB(128), 0).fua
        assert not _engine("extend").build_evict(0, KB(128), 0).fua

    def test_issue_cleans_queue_entries(self):
        engine = _engine()
        command = engine.build_fill(lba=0, length_bytes=KB(4), prp=0)
        result = engine.issue(command, at_ns=0.0)
        assert result.finish_ns > 0
        assert engine.queue_pair.sq.outstanding == 0
        assert engine.queue_pair.cq.outstanding == 0
        assert command.journal_tag == 0

    def test_persist_mode_serialises_outstanding_io(self):
        engine = _engine("persist")
        first = engine.issue(engine.build_fill(0, KB(128), 0), 0.0)
        assert engine.next_available(0.0) == first.finish_ns

    def test_extend_mode_allows_immediate_issue(self):
        engine = _engine("extend")
        engine.issue(engine.build_fill(0, KB(128), 0), 0.0)
        assert engine.next_available(0.0) == 0.0

    def test_issue_miss_persist_orders_evict_before_fill(self):
        engine = _engine("persist")
        fill = engine.build_fill(lba=256, length_bytes=KB(128), prp=0)
        evict = engine.build_evict(lba=0, length_bytes=KB(128), prp=0)
        results = engine.issue_miss(fill, evict, at_ns=0.0)
        assert results["evict"].finish_ns <= results["fill"].submit_ns \
            or results["fill"].submit_ns == 0.0
        assert results["fill"].finish_ns > results["evict"].finish_ns

    def test_issue_miss_without_evict(self):
        engine = _engine()
        results = engine.issue_miss(engine.build_fill(0, KB(128), 0), None, 0.0)
        assert results["evict"] is None
        assert results["fill"] is not None

    def test_tight_engine_charges_register_delivery(self):
        engine = _engine(tight=True)
        engine.issue(engine.build_fill(0, KB(4), 0), 0.0)
        assert engine.register_interface.commands_delivered == 1

    def test_statistics(self):
        engine = _engine()
        engine.issue(engine.build_fill(0, KB(4), 0), 0.0)
        engine.issue(engine.build_evict(0, KB(4), 0), 0.0)
        stats = engine.statistics()
        assert stats["fills_issued"] == 1
        assert stats["evictions_issued"] == 1
        assert stats["commands_issued"] == 2


def _persistency():
    ssd = _ssd()
    link = PCIeLink(PCIeConfig())
    controller = NVMeController(ssd, link, NVMeConfig())
    nvdimm = NVDIMM(NVDIMMConfig(capacity_bytes=MB(64),
                                 pinned_region_bytes=MB(8)))
    queue_pair = QueuePair.create(64)
    return PersistencyController(nvdimm, ssd, controller, queue_pair), queue_pair


class TestPersistencyController:
    def test_clean_shutdown_has_nothing_to_replay(self):
        persistency, _ = _persistency()
        persistency.power_failure(at_ns=1000.0)
        report = persistency.recover(at_ns=2000.0)
        assert report.pending_commands_found == 0
        assert report.commands_reissued == 0
        assert report.consistent

    def test_interrupted_command_is_replayed(self):
        persistency, queue_pair = _persistency()
        command = build_write(lba=0, length_bytes=KB(128), prp=0)
        queue_pair.sq.submit(command)
        command.mark_submitted(500.0)   # issued, completion never arrived
        persistency.power_failure(at_ns=1000.0)
        report = persistency.recover(at_ns=2000.0)
        assert report.pending_commands_found == 1
        assert report.commands_reissued == 1
        assert report.consistent
        assert report.replay_ns > 0

    def test_completed_commands_are_not_replayed(self):
        persistency, queue_pair = _persistency()
        command = build_write(lba=0, length_bytes=KB(4), prp=0)
        queue_pair.sq.submit(command)
        command.mark_submitted(100.0)
        command.mark_completed(200.0)
        persistency.power_failure(at_ns=1000.0)
        report = persistency.recover(at_ns=2000.0)
        assert report.pending_commands_found == 0

    def test_explicit_inflight_injection(self):
        persistency, _ = _persistency()
        commands = [build_write(lba=index * 256, length_bytes=KB(128), prp=0)
                    for index in range(3)]
        for command in commands:
            command.mark_submitted(0.0)
        persistency.power_failure(at_ns=100.0, in_flight=commands)
        report = persistency.recover(at_ns=500.0)
        assert report.commands_reissued == 3
        assert persistency.commands_recovered_total == 3

    def test_recover_without_failure_rejected(self):
        persistency, _ = _persistency()
        with pytest.raises(RuntimeError):
            persistency.recover(at_ns=0.0)

    def test_double_failure_rejected(self):
        persistency, _ = _persistency()
        persistency.power_failure(at_ns=0.0)
        with pytest.raises(RuntimeError):
            persistency.power_failure(at_ns=1.0)

    def test_recovery_includes_nvdimm_restore_time(self):
        persistency, _ = _persistency()
        persistency.power_failure(at_ns=0.0)
        report = persistency.recover(at_ns=10.0)
        assert report.nvdimm_restore_ns > 0
        assert report.total_recovery_ns >= report.nvdimm_restore_ns

    def test_failure_flushes_ssd_buffer(self):
        persistency, _ = _persistency()
        persistency.ssd.write(0, KB(4), at_ns=0.0)
        programs_before = persistency.ssd.fil.page_programs
        persistency.power_failure(at_ns=1000.0)
        assert persistency.ssd.fil.page_programs > programs_before

    def test_statistics(self):
        persistency, _ = _persistency()
        persistency.power_failure(at_ns=0.0)
        persistency.recover(at_ns=1.0)
        stats = persistency.statistics()
        assert stats["power_failures"] == 1
        assert stats["recoveries"] == 1
