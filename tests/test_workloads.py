"""Workload generators, traces, and the Table III registry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import default_config
from repro.units import GB, KB, MB
from repro.workloads.generators import (
    HotspotPattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    ZipfianPattern,
    expand_runs,
    interleave,
)
from repro.workloads.registry import (
    ExperimentScale,
    MICROBENCH_WORKLOADS,
    RODINIA_WORKLOADS,
    SQLITE_WORKLOADS,
    all_workload_names,
    build_trace,
    get_workload,
    scale_system_config,
    table_iii,
)
from repro.workloads.trace import MemoryAccess, WorkloadTrace


class TestGenerators:
    def test_sequential_wraps_around(self):
        pattern = SequentialPattern(KB(64), KB(4))
        addresses = pattern.addresses(20)
        assert addresses[0] == 0
        assert addresses[16] == 0  # 16 slots of 4 KB in 64 KB
        assert all(address % KB(4) == 0 for address in addresses)

    def test_random_within_bounds(self):
        pattern = RandomPattern(MB(1), 64, seed=3)
        addresses = pattern.addresses(1000)
        assert addresses.min() >= 0
        assert addresses.max() < MB(1)

    def test_random_is_deterministic_per_seed(self):
        first = RandomPattern(MB(1), 64, seed=5).addresses(100)
        second = RandomPattern(MB(1), 64, seed=5).addresses(100)
        third = RandomPattern(MB(1), 64, seed=6).addresses(100)
        assert np.array_equal(first, second)
        assert not np.array_equal(first, third)

    def test_zipfian_concentrates_accesses(self):
        pattern = ZipfianPattern(MB(4), 64, seed=1, theta=1.2)
        addresses = pattern.addresses(5000)
        unique, counts = np.unique(addresses, return_counts=True)
        top_share = np.sort(counts)[::-1][:max(1, len(unique) // 100)].sum()
        assert top_share / len(addresses) > 0.2

    def test_hotspot_respects_probability(self):
        pattern = HotspotPattern(MB(4), 64, seed=2, hot_fraction=0.1,
                                 hot_probability=0.9, run_length=1)
        addresses = pattern.addresses(5000)
        hot_limit = int(MB(4) * 0.1)
        hot_share = np.mean(addresses < hot_limit)
        assert 0.8 < hot_share < 0.98

    def test_strided_pattern_has_constant_stride(self):
        pattern = StridedPattern(MB(1), 64, stride_slots=4)
        addresses = pattern.addresses(10)
        deltas = np.diff(addresses[:4])
        assert np.all(deltas == 4 * 64)

    def test_expand_runs(self):
        starts = np.array([0, 100], dtype=np.int64)
        expanded = expand_runs(starts, run_length=3, total_slots=1000)
        assert list(expanded) == [0, 1, 2, 100, 101, 102]

    def test_expand_runs_wraps(self):
        starts = np.array([999], dtype=np.int64)
        expanded = expand_runs(starts, run_length=3, total_slots=1000)
        assert list(expanded) == [999, 0, 1]

    def test_run_length_creates_spatial_locality(self):
        pattern = ZipfianPattern(MB(4), 64, seed=1, run_length=8)
        addresses = pattern.addresses(800)
        consecutive = np.mean(np.diff(addresses) == 64)
        assert consecutive > 0.5

    def test_interleave_mixes_generators(self):
        sequential = SequentialPattern(MB(1), 64)
        random = RandomPattern(MB(1), 64, seed=9)
        mixed = interleave([sequential, random], 500, weights=[0.5, 0.5])
        assert len(mixed) == 500

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SequentialPattern(0, 64)
        with pytest.raises(ValueError):
            RandomPattern(MB(1), 0)
        with pytest.raises(ValueError):
            ZipfianPattern(MB(1), 64, theta=0.5)
        with pytest.raises(ValueError):
            HotspotPattern(MB(1), 64, hot_fraction=0.0)
        with pytest.raises(ValueError):
            StridedPattern(MB(1), 64, stride_slots=0)
        with pytest.raises(ValueError):
            interleave([], 10)


class TestTrace:
    def _trace(self, accesses):
        return WorkloadTrace(name="t", suite="s", accesses=accesses,
                             dataset_bytes=MB(1),
                             compute_instructions_per_access=100.0,
                             accesses_per_operation=10.0,
                             operation_unit="ops",
                             total_instructions=1000)

    def test_counts_and_fractions(self):
        accesses = [MemoryAccess(0, 64, False), MemoryAccess(64, 64, True)]
        trace = self._trace(accesses)
        assert len(trace) == 2
        assert trace.read_count == 1
        assert trace.write_count == 1
        assert trace.write_fraction == 0.5
        assert trace.operations == pytest.approx(0.2)

    def test_operations_per_second(self):
        trace = self._trace([MemoryAccess(0, 64, False)] * 10)
        assert trace.operations_per_second(1e9) == pytest.approx(1.0)
        assert trace.operations_per_second(0.0) == 0.0

    def test_touched_bytes(self):
        trace = self._trace([MemoryAccess(100, 64, False)])
        assert trace.touched_bytes() == 164

    def test_invalid_access(self):
        with pytest.raises(ValueError):
            MemoryAccess(-1, 64, False)
        with pytest.raises(ValueError):
            MemoryAccess(0, 0, False)


class TestRegistry:
    def test_all_twelve_workloads_present(self):
        names = all_workload_names()
        assert len(names) == 12
        assert set(MICROBENCH_WORKLOADS) | set(SQLITE_WORKLOADS) \
            | set(RODINIA_WORKLOADS) == set(names)

    def test_table_iii_matches_paper_numbers(self):
        rows = {row.name: row for row in table_iii()}
        assert rows["seqRd"].total_instructions == 67_000_000_000
        assert rows["seqRd"].dataset_bytes == GB(16)
        assert rows["update"].total_instructions == 244_000_000_000
        assert rows["KMN"].dataset_bytes == GB(5)
        assert rows["BFS"].load_ratio == pytest.approx(0.21)
        assert rows["NN"].store_ratio == pytest.approx(0.05)

    def test_get_workload_unknown_name(self):
        with pytest.raises(ValueError):
            get_workload("nosuch")

    def test_microbench_is_page_granular(self):
        for name in MICROBENCH_WORKLOADS:
            assert get_workload(name).access_size_bytes == KB(4)

    def test_sqlite_and_rodinia_are_fine_grained(self):
        for name in SQLITE_WORKLOADS + RODINIA_WORKLOADS:
            assert get_workload(name).access_size_bytes < KB(4)

    def test_write_workloads_have_more_writes(self):
        assert (get_workload("seqWr").write_fraction
                > get_workload("seqRd").write_fraction)


class TestBuildTrace:
    def test_trace_respects_bounds(self):
        scale = ExperimentScale(min_accesses=500, max_accesses=1000)
        trace = build_trace("seqRd", scale)
        assert 500 <= len(trace) <= 1000
        assert trace.dataset_bytes == scale.scaled_bytes(GB(16))
        assert all(access.address + access.size_bytes <= trace.dataset_bytes
                   for access in trace)

    def test_traces_are_deterministic(self):
        scale = ExperimentScale(max_accesses=800)
        first = build_trace("rndSel", scale)
        second = build_trace("rndSel", scale)
        assert [a.address for a in first] == [a.address for a in second]

    def test_write_fraction_close_to_spec(self):
        scale = ExperimentScale(max_accesses=4000)
        trace = build_trace("rndWr", scale)
        assert trace.write_fraction == pytest.approx(0.9, abs=0.05)

    def test_dataset_override_for_stress_test(self):
        scale = ExperimentScale(max_accesses=500)
        trace = build_trace("seqSel", scale, dataset_bytes_override=MB(700))
        assert trace.dataset_bytes == MB(700)

    def test_every_workload_builds(self):
        scale = ExperimentScale(min_accesses=100, max_accesses=300)
        for name in all_workload_names():
            trace = build_trace(name, scale)
            assert len(trace) >= 100
            assert trace.name == name

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from(all_workload_names()),
           st.integers(min_value=200, max_value=2000))
    def test_trace_invariants(self, name, max_accesses):
        trace = build_trace(name, ExperimentScale(min_accesses=100,
                                                  max_accesses=max_accesses))
        assert 0.0 <= trace.write_fraction <= 1.0
        assert trace.operations > 0
        assert trace.touched_bytes() <= trace.dataset_bytes


class TestScaleSystemConfig:
    def test_capacities_shrink_together(self):
        config = default_config()
        scaled = scale_system_config(config, ExperimentScale(capacity_scale=1 / 64))
        assert scaled.nvdimm.capacity_bytes == config.nvdimm.capacity_bytes // 64
        assert scaled.optane.capacity_bytes == config.optane.capacity_bytes // 64
        assert scaled.ssd.geometry.usable_capacity_bytes < \
            config.ssd.geometry.usable_capacity_bytes

    def test_footprint_ratio_preserved(self):
        """The dataset-to-NVDIMM ratio is what determines hit rates."""
        config = default_config()
        scale = ExperimentScale(capacity_scale=1 / 64)
        scaled = scale_system_config(config, scale)
        original_ratio = GB(16) / config.nvdimm.capacity_bytes
        scaled_ratio = scale.scaled_bytes(GB(16)) / scaled.nvdimm.capacity_bytes
        assert scaled_ratio == pytest.approx(original_ratio, rel=0.05)

    def test_mos_page_size_unchanged(self):
        scaled = scale_system_config(default_config(),
                                     ExperimentScale(capacity_scale=1 / 64))
        assert scaled.hams.mos_page_bytes == KB(128)
