"""Configuration dataclasses: defaults mirror Table II and validate inputs."""

import dataclasses

import pytest

from repro.config import (
    DDRConfig,
    FlashGeometry,
    FlashTiming,
    HAMSConfig,
    NVDIMMConfig,
    OptaneConfig,
    PCIeConfig,
    SSDConfig,
    SystemConfig,
    default_config,
)
from repro.units import GB, KB, MB


class TestFlashTiming:
    def test_znand_latencies_match_paper(self):
        timing = FlashTiming.znand()
        assert timing.read_ns == 3_000.0
        assert timing.program_ns == 100_000.0

    def test_vnand_is_slower_than_znand(self):
        znand = FlashTiming.znand()
        vnand = FlashTiming.vnand_tlc()
        assert vnand.read_ns > znand.read_ns
        assert vnand.program_ns > znand.program_ns

    def test_vnand_ratios_match_paper(self):
        # Z-NAND read/write are 15x / 7x lower than V-NAND.
        znand = FlashTiming.znand()
        vnand = FlashTiming.vnand_tlc()
        assert vnand.read_ns / znand.read_ns == pytest.approx(15.0)
        assert vnand.program_ns / znand.program_ns == pytest.approx(7.0)


class TestFlashGeometry:
    def test_capacity_composition(self):
        geometry = FlashGeometry()
        expected_raw = (geometry.channels * geometry.packages_per_channel
                        * geometry.dies_per_package * geometry.planes_per_die
                        * geometry.blocks_per_plane * geometry.pages_per_block
                        * geometry.page_size)
        assert geometry.raw_capacity_bytes == expected_raw

    def test_usable_capacity_reflects_overprovisioning(self):
        geometry = FlashGeometry()
        assert geometry.usable_capacity_bytes < geometry.raw_capacity_bytes

    def test_logical_pages(self):
        geometry = FlashGeometry()
        assert geometry.logical_pages == (geometry.usable_capacity_bytes
                                          // geometry.page_size)


class TestSSDConfig:
    def test_ull_flash_capacity(self):
        config = SSDConfig.ull_flash(GB(800))
        assert config.geometry.usable_capacity_bytes >= GB(800)
        assert config.name == "ull-flash"
        assert config.split_channels is True

    def test_nvme_ssd_uses_slower_flash(self):
        ull = SSDConfig.ull_flash()
        nvme = SSDConfig.nvme_ssd()
        assert nvme.timing.read_ns > ull.timing.read_ns
        assert nvme.split_channels is False

    def test_sata_ssd_has_lower_channel_bandwidth(self):
        sata = SSDConfig.sata_ssd()
        ull = SSDConfig.ull_flash()
        assert sata.channel_bw_bytes_per_ns < ull.channel_bw_bytes_per_ns

    def test_default_buffer_is_512mb(self):
        assert SSDConfig().dram_buffer_bytes == MB(512)


class TestNVDIMMConfig:
    def test_default_capacity_is_8gb(self):
        assert NVDIMMConfig().capacity_bytes == GB(8)

    def test_pinned_region_is_512mb(self):
        assert NVDIMMConfig().pinned_region_bytes == MB(512)

    def test_cacheable_excludes_pinned(self):
        config = NVDIMMConfig()
        assert config.cacheable_bytes == GB(8) - MB(512)


class TestHAMSConfig:
    def test_defaults(self):
        config = HAMSConfig()
        assert config.mos_page_bytes == KB(128)
        assert config.integration == "loose"
        assert config.mode == "extend"

    def test_invalid_integration_rejected(self):
        with pytest.raises(ValueError):
            HAMSConfig(integration="bogus")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            HAMSConfig(mode="bogus")

    def test_mos_page_must_be_multiple_of_4k(self):
        with pytest.raises(ValueError):
            HAMSConfig(mos_page_bytes=KB(3))

    def test_mode_properties(self):
        assert HAMSConfig(mode="persist").is_persist
        assert not HAMSConfig(mode="extend").is_persist
        assert HAMSConfig(integration="tight").is_tight


class TestPCIeConfig:
    def test_default_is_four_lane_gen3(self):
        config = PCIeConfig()
        assert config.lanes == 4
        # ~4 GB/s aggregate.
        assert config.bandwidth_bytes_per_ns == pytest.approx(
            4 * config.per_lane_bw_bytes_per_ns)


class TestSystemConfig:
    def test_default_config_builds(self):
        config = default_config()
        assert isinstance(config, SystemConfig)
        assert config.nvdimm.capacity_bytes == GB(8)

    def test_with_hams_returns_modified_copy(self):
        config = default_config()
        modified = config.with_hams(mode="persist")
        assert modified.hams.mode == "persist"
        assert config.hams.mode == "extend"

    def test_with_nvdimm_returns_modified_copy(self):
        config = default_config()
        modified = config.with_nvdimm(capacity_bytes=GB(16))
        assert modified.nvdimm.capacity_bytes == GB(16)
        assert config.nvdimm.capacity_bytes == GB(8)

    def test_with_ssd_swaps_device(self):
        config = default_config()
        modified = config.with_ssd(SSDConfig.sata_ssd())
        assert modified.ssd.name == "sata-ssd"

    def test_configs_are_frozen(self):
        config = default_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.nvdimm.capacity_bytes = 1  # type: ignore[misc]


class TestOptaneConfig:
    def test_default_capacity(self):
        assert OptaneConfig().capacity_bytes == GB(512)

    def test_internal_block_granularity(self):
        assert OptaneConfig().internal_block_bytes == 256


class TestDDRConfig:
    def test_channel_bandwidth_is_about_20gbps(self):
        config = DDRConfig()
        # 20 GB/s/channel as quoted in Section IV-C.
        assert config.channel_bw_bytes_per_ns == pytest.approx(
            20 * 1024 ** 3 / 1e9)
