"""Tests for the parallel experiment runner, its cache and its artifacts.

The load-bearing property is determinism: a pool run must be bit-identical
to a serial run, and a cache hit must reproduce the original result exactly
(the figures' assertions compare floats without tolerance).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import ExperimentResult, ExperimentRunner
from repro.runner import (
    EXPERIMENT_SCHEMA,
    ParallelExperimentRunner,
    RunCache,
    RunSpec,
    apply_config_overrides,
    experiment_from_artifact,
    load_experiment_artifact,
    matrix_specs,
    run_cache_key,
    run_result_from_dict,
    run_result_to_dict,
    write_experiment_artifact,
)
from repro.runner import parallel as parallel_module
from repro.units import KB
from repro.workloads.registry import ExperimentScale, TraceSpec

#: Small enough that a full matrix run stays sub-second, large enough that
#: the platforms do real work (cache fills, evictions, energy accounting).
TINY = ExperimentScale(capacity_scale=1 / 512, min_accesses=120,
                       max_accesses=240)
PLATFORMS = ["mmap", "hams-TE"]
WORKLOADS = ["seqRd", "update"]


def _as_dicts(experiment: ExperimentResult) -> dict:
    return {key: run_result_to_dict(result)
            for key, result in experiment.results.items()}


class TestDeterminism:
    def test_serial_runner_equivalence(self):
        """workers=1 reproduces the legacy serial runner bit for bit."""
        serial = ExperimentRunner(TINY).run_matrix(PLATFORMS, WORKLOADS)
        inline = ParallelExperimentRunner(TINY, workers=1).run_matrix(
            PLATFORMS, WORKLOADS)
        assert _as_dicts(inline) == _as_dicts(serial)

    def test_pool_equivalence(self):
        """A multi-process pool run is bit-identical to the inline run."""
        inline = ParallelExperimentRunner(TINY, workers=1).run_matrix(
            PLATFORMS, WORKLOADS)
        pooled = ParallelExperimentRunner(TINY, workers=3).run_matrix(
            PLATFORMS, WORKLOADS)
        assert _as_dicts(pooled) == _as_dicts(inline)

    def test_matrix_spec_order_matches_serial_loop(self):
        specs = matrix_specs(["a", "b"], ["w1", "w2"])
        assert [spec.result_key for spec in specs] == [
            ("a", "w1"), ("b", "w1"), ("a", "w2"), ("b", "w2")]

    def test_trace_spec_builds_identical_trace(self):
        spec = TraceSpec("seqRd", TINY)
        first, second = spec.build(), spec.build()
        assert first.dataset_bytes == second.dataset_bytes
        assert [(access.address, access.is_write)
                for access in first.accesses] == \
               [(access.address, access.is_write)
                for access in second.accesses]


class TestRunSpecs:
    def test_config_override_changes_behaviour(self):
        runner = ParallelExperimentRunner(TINY, workers=1)
        default = runner.run_spec(RunSpec("hams-TE", "seqSel"))
        tiny_pages = runner.run_spec(RunSpec(
            "hams-TE", "seqSel",
            config_overrides={"hams": {"mos_page_bytes": KB(4)}}))
        assert tiny_pages.total_ns != default.total_ns

    def test_unknown_config_section_rejected(self):
        runner = ParallelExperimentRunner(TINY, workers=1)
        with pytest.raises(ValueError, match="unknown config section"):
            apply_config_overrides(runner.config, {"bogus": {"x": 1}})

    def test_platform_kwargs_reach_constructor(self):
        runner = ParallelExperimentRunner(TINY, workers=1)
        result = runner.run_spec(RunSpec(
            "oracle", "seqRd", platform_kwargs={"capacity_bytes": 1 << 26}))
        assert result.platform == "oracle"

    def test_label_renames_result_key(self):
        runner = ParallelExperimentRunner(TINY, workers=1)
        experiment = runner.collect([
            RunSpec("hams-TE", "seqRd", label="sweep-point")])
        assert ("sweep-point", "seqRd") in experiment.results

    def test_run_one_matches_legacy_signature(self):
        runner = ParallelExperimentRunner(TINY, workers=1)
        override = TINY.scaled_bytes(1 << 34)
        result = runner.run_one("mmap", "seqRd",
                                dataset_bytes_override=override)
        legacy = ExperimentRunner(TINY).run_one(
            "mmap", "seqRd", dataset_bytes_override=override)
        assert run_result_to_dict(result) == run_result_to_dict(legacy)


class TestRunCache:
    def test_miss_then_hit(self, tmp_path):
        first = ParallelExperimentRunner(TINY, workers=1,
                                         cache_dir=tmp_path)
        baseline = first.run_matrix(PLATFORMS, WORKLOADS)
        assert first.cache.hits == 0
        assert first.cache.misses == len(PLATFORMS) * len(WORKLOADS)

        second = ParallelExperimentRunner(TINY, workers=1,
                                          cache_dir=tmp_path)
        replay = second.run_matrix(PLATFORMS, WORKLOADS)
        assert second.cache.hits == len(PLATFORMS) * len(WORKLOADS)
        assert second.cache.misses == 0
        assert _as_dicts(replay) == _as_dicts(baseline)

    def test_hit_skips_execution(self, tmp_path, monkeypatch):
        runner = ParallelExperimentRunner(TINY, workers=1,
                                          cache_dir=tmp_path)
        runner.run_spec(RunSpec("mmap", "seqRd"))

        def boom(*args, **kwargs):
            raise AssertionError("cached run must not re-execute")

        monkeypatch.setattr(parallel_module, "execute_spec", boom)
        fresh = ParallelExperimentRunner(TINY, workers=1,
                                         cache_dir=tmp_path)
        fresh.run_spec(RunSpec("mmap", "seqRd"))
        assert fresh.cache.hits == 1

    def test_scale_change_invalidates(self, tmp_path):
        spec = RunSpec("mmap", "seqRd")
        ParallelExperimentRunner(TINY, workers=1,
                                 cache_dir=tmp_path).run_spec(spec)
        other_scale = ExperimentScale(capacity_scale=1 / 512,
                                      min_accesses=120, max_accesses=240,
                                      seed=7)
        other = ParallelExperimentRunner(other_scale, workers=1,
                                         cache_dir=tmp_path)
        other.run_spec(spec)
        assert other.cache.hits == 0
        assert other.cache.misses == 1

    def test_config_change_invalidates_key(self):
        runner = ParallelExperimentRunner(TINY, workers=1)
        spec = RunSpec("hams-TE", "seqRd")
        base_key = run_cache_key(spec, runner.config, runner.scale)
        tweaked = runner.config.with_hams(mos_page_bytes=KB(4))
        assert run_cache_key(spec, tweaked, runner.scale) != base_key

    def test_spec_knobs_change_key(self):
        runner = ParallelExperimentRunner(TINY, workers=1)
        base = run_cache_key(RunSpec("mmap", "seqRd"), runner.config,
                             runner.scale)
        for variant in (
                RunSpec("mmap", "rndRd"),
                RunSpec("mmap", "seqRd", dataset_bytes_override=1 << 22),
                RunSpec("mmap", "seqRd",
                        config_overrides={"hams": {"tag_check_ns": 11.0}}),
        ):
            assert run_cache_key(variant, runner.config,
                                 runner.scale) != base

    def test_force_reexecutes_but_restores(self, tmp_path):
        spec = RunSpec("mmap", "seqRd")
        ParallelExperimentRunner(TINY, workers=1,
                                 cache_dir=tmp_path).run_spec(spec)
        forced = ParallelExperimentRunner(TINY, workers=1,
                                          cache_dir=tmp_path, force=True)
        forced.run_spec(spec)
        assert forced.cache.hits == 0

    def test_disabled_cache(self):
        cache = RunCache(None)
        assert not cache.enabled
        assert cache.load("deadbeef") is None

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        runner = ParallelExperimentRunner(TINY, workers=1,
                                          cache_dir=tmp_path)
        spec = RunSpec("mmap", "seqRd")
        runner.run_spec(spec)
        path = runner.cache.path_for(runner.cache_key(spec))
        path.write_text("{not json", encoding="utf-8")
        fresh = ParallelExperimentRunner(TINY, workers=1,
                                         cache_dir=tmp_path)
        result = fresh.run_spec(spec)
        assert fresh.cache.hits == 0
        assert result.platform == "mmap"


class TestArtifacts:
    def test_run_result_round_trip(self):
        result = ParallelExperimentRunner(TINY, workers=1).run_one(
            "hams-TE", "update")
        payload = run_result_to_dict(result)
        rebuilt = run_result_from_dict(
            json.loads(json.dumps(payload)))
        assert run_result_to_dict(rebuilt) == payload
        assert rebuilt.energy.total_nj == result.energy.total_nj
        assert rebuilt.operations_per_second == result.operations_per_second

    def test_experiment_artifact_round_trip(self, tmp_path):
        runner = ParallelExperimentRunner(TINY, workers=1)
        experiment = runner.run_matrix(PLATFORMS, WORKLOADS)
        path = write_experiment_artifact(tmp_path, "tiny", experiment,
                                         runner.config,
                                         meta={"workers": runner.workers})
        payload = load_experiment_artifact(path)
        assert payload["schema"] == EXPERIMENT_SCHEMA
        assert payload["experiment"] == "tiny"
        assert payload["config_hash"].startswith("sha256:")
        assert len(payload["runs"]) == len(PLATFORMS) * len(WORKLOADS)
        rebuilt = experiment_from_artifact(payload)
        assert rebuilt.scale == experiment.scale
        assert _as_dicts(rebuilt) == _as_dicts(experiment)

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope/9", "runs": []}),
                        encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported artifact schema"):
            load_experiment_artifact(path)


class TestExperimentResultMerge:
    def test_merge_combines_shards(self):
        runner = ParallelExperimentRunner(TINY, workers=1)
        left = runner.run_matrix(["mmap"], WORKLOADS)
        right = runner.run_matrix(["hams-TE"], WORKLOADS)
        merged = left.merge(right)
        assert merged is left
        assert set(merged.platforms()) == {"mmap", "hams-TE"}
        assert merged.get("hams-TE", "update").platform == "hams-TE"

    def test_speedup_tolerates_non_rectangular_results(self):
        """Merged shards need not be rectangular; missing cells are skipped."""
        runner = ParallelExperimentRunner(TINY, workers=1)
        experiment = runner.run_matrix(["mmap", "hams-TE"], ["seqRd"])
        experiment.merge(runner.run_matrix(["hams-TE"], ["update"]))
        speedups = experiment.speedup_over("hams-TE", "mmap")
        assert list(speedups) == ["seqRd"]
        assert experiment.mean_speedup("hams-TE", "mmap") > 0
        assert experiment.energy_ratio("hams-TE", "mmap") > 0

    def test_merge_rejects_scale_mismatch(self):
        left = ExperimentResult(scale=TINY)
        right = ExperimentResult(scale=ExperimentScale())
        with pytest.raises(ValueError, match="different scales"):
            left.merge(right)
