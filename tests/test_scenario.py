"""The multi-tenant scenario engine: merge properties, attribution, QoS.

Four contracts are pinned here:

* **Merge determinism and chunking invariance** (hypothesis): the
  interleave and rate merges are pure functions of the spec and the
  tenant lengths — the emitted sequence never depends on the internal
  block granularity or on how the mixed stream is chunked for replay,
  each tenant's stream is consumed strictly sequentially, and projecting
  a tenant back out of the mix returns its original stream exactly.

* **1-tenant identity** (golden, every registry platform): a scenario
  with one tenant replays bit-identically to the plain solo run — same
  RunResult field for field — with the per-tenant payload riding only in
  ``RunResult.tenants``.

* **Conservation** (threshold 0): in any mix, the per-tenant statistics
  sum exactly to the aggregate payload, and the integer totals match the
  platform's own accounting.

* **Plumbing parity**: ``scenario:`` specs flow through the runner, the
  content-addressed cache, the executor tiers and serve validation like
  any other workload source, and QoS policies measurably change what
  each tenant experiences.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_config
from repro.distrib.manifest import estimate_spec_cost
from repro.platforms.registry import available_platforms, create_platform
from repro.runner.artifacts import (
    run_cache_key,
    run_result_from_dict,
    run_result_to_dict,
    scale_to_dict,
)
from repro.runner.parallel import execute_spec
from repro.runner.specs import RunSpec, workload_display_label
from repro.scenario import (
    ScenarioSpec,
    TenantSpec,
    build_mixed_trace,
    mix_content_hash,
    run_scenario,
    scenario_run_spec,
    scenario_source,
    scenario_spec_length,
    parse_scenario_source,
    tenant_projection,
)
from repro.scenario.mix import (
    MERGE_BLOCK,
    _interleave_blocks,
    _rate_blocks,
)
from repro.scenario.policy import jains_index, tenant_slowdowns
from repro.workloads.registry import (
    ExperimentScale,
    build_trace,
    scale_system_config,
)

#: Small enough for the full platform matrix, large enough for cache
#: evictions and migrations (mirrors tests/test_batched_replay.py).
SCALE = ExperimentScale(capacity_scale=1 / 256, min_accesses=200,
                        max_accesses=600)

#: Larger streams for the contention/policy assertions, where tenants
#: must actually fight over the page cache.
CONTENTION_SCALE = ExperimentScale(capacity_scale=1 / 256,
                                   min_accesses=1500, max_accesses=3000)


def trio_spec(**kwargs) -> ScenarioSpec:
    defaults = dict(
        name="trio",
        tenants=(TenantSpec(workload="seqRd"),
                 TenantSpec(workload="rndRd"),
                 TenantSpec(workload="update", weight=2)))
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


@pytest.fixture(scope="module")
def config():
    return scale_system_config(default_config(), SCALE)


# ---------------------------------------------------------------------------
# Spec layer
# ---------------------------------------------------------------------------


class TestScenarioSpec:
    def test_source_round_trip(self):
        spec = trio_spec(arrival="rate", policy="throttle",
                         policy_params={"limits": {"seqRd": 0.5}})
        source = scenario_source(spec)
        assert source.startswith("scenario:")
        assert parse_scenario_source(source) == spec
        # The source is canonical: re-encoding the parse is a fixpoint.
        assert scenario_source(parse_scenario_source(source)) == source

    def test_from_dict_round_trip(self):
        spec = trio_spec()
        assert ScenarioSpec.from_dict(spec.canonical()) == spec

    def test_validation_errors(self):
        tenants = (TenantSpec(workload="seqRd"),)
        with pytest.raises(ValueError, match="arrival"):
            ScenarioSpec(name="x", tenants=tenants, arrival="poisson")
        with pytest.raises(ValueError, match="policy"):
            ScenarioSpec(name="x", tenants=tenants, policy="magic")
        with pytest.raises(ValueError, match="rate"):
            ScenarioSpec(name="x", tenants=tenants, policy="throttle")
        with pytest.raises(ValueError, match="phase"):
            ScenarioSpec(name="x", tenants=(
                TenantSpec(workload="seqRd", phase=1.0),))
        with pytest.raises(ValueError, match="nest"):
            TenantSpec(workload="scenario:{}")
        with pytest.raises(ValueError, match="weight"):
            TenantSpec(workload="seqRd", weight=0)
        with pytest.raises(ValueError, match="reserved"):
            TenantSpec(workload="seqRd", name="aggregate")
        with pytest.raises(ValueError, match="at least one tenant"):
            ScenarioSpec(name="x", tenants=())

    def test_tenant_names_dedup(self):
        spec = ScenarioSpec(name="selfmix", tenants=(
            TenantSpec(workload="rndRd"),
            TenantSpec(workload="rndRd"),
            TenantSpec(workload="seqRd", name="reader")))
        assert spec.tenant_names() == ["rndRd#0", "rndRd#1", "reader"]

    def test_identity_ignores_tenant_file_paths(self, tmp_path):
        from repro.trace.writer import build_trace_file
        a = tmp_path / "a.trace"
        b = tmp_path / "sub" / "b.trace"
        b.parent.mkdir()
        build_trace_file("seqRd", a, scale=SCALE)
        build_trace_file("seqRd", b, scale=SCALE)
        scale_dict = scale_to_dict(SCALE)
        identities = [
            ScenarioSpec(name="m", tenants=(
                TenantSpec(workload=f"trace:{path}", name="t0"),
                TenantSpec(workload="update"))).identity(scale_dict)
            for path in (a, b)]
        # Same content, different paths: one identity (and one cache key).
        assert identities[0] == identities[1]

    def test_spec_length_matches_built_trace(self):
        spec = trio_spec()
        assert scenario_spec_length(spec, SCALE) == \
            len(build_mixed_trace(spec, SCALE))
        run = scenario_run_spec(spec, "mmap")
        assert estimate_spec_cost(run, SCALE) == \
            scenario_spec_length(spec, SCALE)

    def test_workload_display_label(self):
        run = scenario_run_spec(trio_spec(), "mmap")
        assert run.workload_label == "trio"
        assert workload_display_label(run.workload) == "trio"
        assert workload_display_label("seqRd") is None


# ---------------------------------------------------------------------------
# Merge order properties (hypothesis)
# ---------------------------------------------------------------------------


def drain(blocks):
    """Concatenate a merge generator into (indices, positions) columns."""
    pairs = list(blocks)
    if not pairs:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    return (np.concatenate([indices for indices, _ in pairs]),
            np.concatenate([positions for _, positions in pairs]))


def assert_sequential_consumption(indices, positions, lengths):
    """Every tenant's positions come out as 0..length-1, in order."""
    for tenant, length in enumerate(lengths):
        mine = positions[indices == tenant]
        np.testing.assert_array_equal(
            mine, np.arange(length, dtype=np.int64))


@st.composite
def tenant_shapes(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    lengths = draw(st.lists(st.integers(min_value=0, max_value=60),
                            min_size=count, max_size=count))
    weights = draw(st.lists(st.integers(min_value=1, max_value=5),
                            min_size=count, max_size=count))
    return lengths, weights


class TestInterleaveMerge:
    @given(shapes=tenant_shapes(),
           block=st.sampled_from([1, 3, 17, MERGE_BLOCK]))
    @settings(max_examples=60, deadline=None)
    def test_block_size_never_changes_the_sequence(self, shapes, block):
        lengths, weights = shapes
        reference = drain(_interleave_blocks(lengths, weights,
                                             block=MERGE_BLOCK))
        candidate = drain(_interleave_blocks(lengths, weights, block=block))
        np.testing.assert_array_equal(reference[0], candidate[0])
        np.testing.assert_array_equal(reference[1], candidate[1])
        assert_sequential_consumption(*candidate, lengths)

    def test_weighted_cycle_order(self):
        indices, positions = drain(_interleave_blocks([4, 2], [2, 1],
                                                      block=3))
        np.testing.assert_array_equal(
            indices, [0, 0, 1, 0, 0, 1])
        np.testing.assert_array_equal(
            positions, [0, 1, 0, 2, 3, 1])


@st.composite
def rate_shapes(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    lengths = draw(st.lists(st.integers(min_value=0, max_value=60),
                            min_size=count, max_size=count))
    # Dyadic rates/phases: exactly representable, so equality of issue
    # clocks across buffering granularities is exact, not approximate.
    rates = draw(st.lists(st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0]),
                          min_size=count, max_size=count))
    phases = draw(st.lists(st.sampled_from([0.0, 0.5, 1.0, 2.5]),
                           min_size=count, max_size=count))
    priorities = draw(st.lists(st.integers(min_value=0, max_value=3),
                               min_size=count, max_size=count))
    return lengths, rates, phases, priorities


class TestRateMerge:
    @given(shapes=rate_shapes(),
           block=st.sampled_from([1, 3, 17, MERGE_BLOCK]),
           windows=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_buffering_never_changes_the_sequence(self, shapes, block,
                                                  windows):
        lengths, rates, phases, priorities = shapes
        reference = drain(_rate_blocks(lengths, rates, phases, priorities,
                                       block=MERGE_BLOCK,
                                       priority_windows=windows))
        candidate = drain(_rate_blocks(lengths, rates, phases, priorities,
                                       block=block,
                                       priority_windows=windows))
        np.testing.assert_array_equal(reference[0], candidate[0])
        np.testing.assert_array_equal(reference[1], candidate[1])
        assert_sequential_consumption(*candidate, lengths)

    @given(shapes=rate_shapes())
    @settings(max_examples=40, deadline=None)
    def test_issue_clocks_are_globally_sorted(self, shapes):
        lengths, rates, phases, _ = shapes
        indices, positions = drain(
            _rate_blocks(lengths, rates, phases, [0] * len(lengths)))
        issue = np.asarray([phases[t] + (p + 1.0) / rates[t]
                            for t, p in zip(indices, positions)])
        assert np.all(np.diff(issue) >= 0)

    def test_rate_scaling_doubles_arrivals(self):
        # Tenant 0 at rate 2 lands two accesses per unit clock; tenant 1
        # at rate 1 lands one — so the merged prefix alternates 0,0,1.
        indices, _ = drain(_rate_blocks([8, 4], [2.0, 1.0], [0.0, 0.0],
                                        [0, 0]))
        np.testing.assert_array_equal(indices[:6], [0, 0, 1, 0, 0, 1])

    def test_priority_reorders_within_windows(self):
        # Same clocks; higher priority of tenant 1 wins inside each unit
        # window but cannot jump into an earlier window.
        plain, _ = drain(_rate_blocks([4, 4], [1.0, 1.0], [0.0, 0.0],
                                      [0, 1]))
        windowed, _ = drain(_rate_blocks([4, 4], [1.0, 1.0], [0.0, 0.0],
                                         [0, 1], priority_windows=True))
        np.testing.assert_array_equal(plain, [0, 1] * 4)
        np.testing.assert_array_equal(windowed, [1, 0] * 4)


# ---------------------------------------------------------------------------
# The mixed stream
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def trio_trace():
    return build_mixed_trace(trio_spec(), SCALE)


class TestMixedStream:
    def test_deterministic_rebuild(self, trio_trace):
        again = build_mixed_trace(trio_spec(), SCALE)
        np.testing.assert_array_equal(trio_trace.stream.addresses,
                                      again.stream.addresses)
        assert mix_content_hash(trio_trace.stream) == \
            mix_content_hash(again.stream)

    @given(chunk_size=st.integers(min_value=1, max_value=2000))
    @settings(max_examples=25, deadline=None)
    def test_chunking_invariance(self, trio_trace, chunk_size):
        stream = trio_trace.stream
        chunks = list(stream.chunks(chunk_size))
        assert all(len(chunk) == chunk_size for chunk in chunks[:-1])
        assert sum(len(chunk) for chunk in chunks) == len(stream)
        np.testing.assert_array_equal(
            np.concatenate([chunk.addresses for chunk in chunks]),
            stream.addresses)
        np.testing.assert_array_equal(
            np.concatenate([chunk.tenants for chunk in chunks]),
            stream.tenants)
        assert mix_content_hash(stream, chunk_size=chunk_size) == \
            mix_content_hash(stream)

    def test_tenant_projection_equals_original(self, trio_trace):
        spec = trio_spec()
        for index, tenant in enumerate(spec.tenants):
            original = build_trace(tenant.workload, SCALE).stream
            projected = tenant_projection(trio_trace.stream, index)
            np.testing.assert_array_equal(projected.addresses,
                                          original.addresses)
            np.testing.assert_array_equal(projected.sizes, original.sizes)
            np.testing.assert_array_equal(projected.writes,
                                          original.writes)

    def test_tenant_spans_do_not_overlap(self, trio_trace):
        stream = trio_trace.stream
        bases = stream.bases
        assert bases == tuple(sorted(bases))
        for index in range(len(bases)):
            mine = stream.addresses[stream.tenants == index]
            assert mine.min() >= bases[index]
            if index + 1 < len(bases):
                assert mine.max() < bases[index + 1]

    def test_accounting_merges(self, trio_trace):
        spec = trio_spec()
        solos = [build_trace(tenant.workload, SCALE)
                 for tenant in spec.tenants]
        assert len(trio_trace) == sum(len(solo) for solo in solos)
        assert trio_trace.stream.write_count == \
            sum(solo.stream.write_count for solo in solos)
        assert trio_trace.operations == \
            sum(solo.operations for solo in solos)
        assert trio_trace.total_instructions == \
            sum(solo.total_instructions for solo in solos)
        assert trio_trace.suite == "scenario"


# ---------------------------------------------------------------------------
# Replay: identity, conservation, attribution
# ---------------------------------------------------------------------------


class TestOneTenantIdentity:
    @pytest.mark.parametrize("platform_name", available_platforms())
    def test_bit_identical_to_solo(self, platform_name, config):
        spec = ScenarioSpec(name="solo", tenants=(
            TenantSpec(workload="update"),))
        mixed = run_scenario(spec, create_platform(platform_name, config),
                             SCALE)
        solo = create_platform(platform_name, config).run(
            build_trace("update", SCALE))
        mixed_fields = dataclasses.asdict(mixed)
        tenants = mixed_fields.pop("tenants")
        solo_fields = dataclasses.asdict(solo)
        solo_fields.pop("tenants")
        assert mixed_fields == solo_fields
        assert set(tenants) == {"update", "aggregate"}
        assert tenants["update"] == tenants["aggregate"]
        assert tenants["update"]["accesses"] == mixed.memory_accesses


CONSERVATION_PLATFORMS = ("mmap", "oracle", "nvdimm-C", "hams-TE")


class TestConservation:
    @pytest.mark.parametrize("platform_name", CONSERVATION_PLATFORMS)
    def test_per_tenant_sums_to_aggregate(self, platform_name, config):
        spec = trio_spec()
        result = run_scenario(
            spec, create_platform(platform_name, config), SCALE)
        names = spec.tenant_names()
        assert set(result.tenants) == set(names) | {"aggregate"}
        aggregate = result.tenants["aggregate"]
        keys = {key for name in names for key in result.tenants[name]
                if not key.startswith("service_ns")}
        for key in keys:
            total = sum(result.tenants[name].get(key, 0.0)
                        for name in names)
            assert total == pytest.approx(aggregate[key], abs=0, rel=0), \
                f"{key} not conserved on {platform_name}"
        assert aggregate["accesses"] == result.memory_accesses
        assert aggregate.get("offchip", 0.0) == result.offchip_accesses
        # The latency aggregate merges too: counts add exactly.
        if "service_ns.count" in aggregate:
            assert aggregate["service_ns.count"] == sum(
                result.tenants[name].get("service_ns.count", 0.0)
                for name in names)


# ---------------------------------------------------------------------------
# QoS policies
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def contention_config():
    return scale_system_config(default_config(), CONTENTION_SCALE)


def stall_per_access(result, names):
    return {name: result.tenants[name]["stall_ns"]
            / result.tenants[name]["accesses"] for name in names}


class TestPolicies:
    def test_cache_partition_changes_outcomes(self, contention_config):
        spec = trio_spec()
        names = spec.tenant_names()
        shared = run_scenario(
            spec, create_platform("nvdimm-C", contention_config),
            CONTENTION_SCALE)
        parted = run_scenario(
            trio_spec(policy="cache-partition"),
            create_platform("nvdimm-C", contention_config),
            CONTENTION_SCALE)
        # Shared cache: tenants evict each other.  Partitioned: that is
        # structurally impossible, and the outcomes measurably move.
        assert sum(shared.tenants[name].get("evictions_suffered", 0.0)
                   for name in names) > 0
        assert all(parted.tenants[name].get("evictions_suffered", 0.0) == 0
                   for name in names)
        assert stall_per_access(shared, names) != \
            stall_per_access(parted, names)

    def test_cache_partition_needs_a_cache(self, contention_config):
        with pytest.raises(ValueError, match="no partitionable"):
            run_scenario(trio_spec(policy="cache-partition"),
                         create_platform("mmap", contention_config),
                         CONTENTION_SCALE)

    def test_cache_partition_honours_shares(self, contention_config):
        lopsided = trio_spec(policy="cache-partition",
                             policy_params={"shares": {"rndRd": 8.0}})
        fair = trio_spec(policy="cache-partition")
        big = run_scenario(
            lopsided, create_platform("nvdimm-C", contention_config),
            CONTENTION_SCALE)
        even = run_scenario(
            fair, create_platform("nvdimm-C", contention_config),
            CONTENTION_SCALE)
        # Eight shares of the cache buy rndRd at least as many hits.
        assert big.tenants["rndRd"]["cache_hits"] >= \
            even.tenants["rndRd"]["cache_hits"]

    def test_throttle_clamps_the_merge(self):
        base = trio_spec(arrival="rate")
        throttled = trio_spec(
            arrival="rate", policy="throttle",
            policy_params={"limits": {"seqRd": 0.25}})
        plain = build_mixed_trace(base, SCALE).stream
        clamped = build_mixed_trace(throttled, SCALE).stream
        assert len(plain) == len(clamped)  # admission delays, not drops
        assert mix_content_hash(plain) != mix_content_hash(clamped)
        # The throttled tenant's accesses shift later in the mix.
        assert np.mean(np.flatnonzero(clamped.tenants == 0)) > \
            np.mean(np.flatnonzero(plain.tenants == 0))

    def test_throttle_unknown_tenant_rejected(self):
        spec = trio_spec(arrival="rate", policy="throttle",
                         policy_params={"limits": {"nobody": 0.5}})
        with pytest.raises(ValueError, match="unknown tenants"):
            build_mixed_trace(spec, SCALE).stream.addresses

    def test_fairness_metrics(self):
        assert jains_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jains_index([1.0, 0.0, 0.0]) == pytest.approx(1 / 3)
        mixed = {"a": {"accesses": 10.0, "stall_ns": 40.0},
                 "b": {"accesses": 10.0, "stall_ns": 10.0}}
        solo_result = dataclasses.make_dataclass(
            "Solo", ["memory_stall_ns", "memory_accesses"])
        slowdowns = tenant_slowdowns(
            mixed, {"a": solo_result(20.0, 10), "b": solo_result(10.0, 10)})
        assert slowdowns == {"a": 2.0, "b": 1.0}


# ---------------------------------------------------------------------------
# Runner / cache / executor / serve plumbing
# ---------------------------------------------------------------------------


class TestRunnerPlumbing:
    def test_execute_spec_dispatches_scenarios(self, config):
        spec = scenario_run_spec(trio_spec(), "nvdimm-C")
        result = execute_spec(spec, config, SCALE)
        assert set(result.tenants) == \
            set(trio_spec().tenant_names()) | {"aggregate"}

    def test_result_serialisation_round_trip(self, config):
        spec = scenario_run_spec(trio_spec(), "oracle")
        result = execute_spec(spec, config, SCALE)
        payload = json.loads(json.dumps(run_result_to_dict(result)))
        restored = run_result_from_dict(payload)
        assert restored.tenants == result.tenants
        # Plain runs stay byte-stable: no "tenants" key at all.
        solo = execute_spec(RunSpec(platform="oracle", workload="seqRd"),
                            config, SCALE)
        assert "tenants" not in run_result_to_dict(solo)

    def test_cache_key_is_stable_and_label_free(self, config):
        spec = scenario_run_spec(trio_spec(), "oracle")
        relabelled = dataclasses.replace(spec, label="x",
                                         workload_label="y")
        assert run_cache_key(spec, config, SCALE) == \
            run_cache_key(relabelled, config, SCALE)

    def test_executor_tiers_and_cache_agree(self, tmp_path):
        from repro.api import Session
        spec = scenario_run_spec(trio_spec(), "nvdimm-C")
        sessions = {
            "serial": Session(SCALE, executor="serial"),
            "pool": Session(SCALE, workers=2),
            "sharded": Session(SCALE, shards=2),
        }
        outputs = {}
        for tier, session in sessions.items():
            experiment = session.collect([spec], name=f"mix-{tier}")
            outputs[tier] = run_result_to_dict(
                experiment.get("nvdimm-C", "trio"))
        assert outputs["serial"] == outputs["pool"] == outputs["sharded"]

        cached = Session(SCALE, cache_dir=tmp_path / "cache")
        first = cached.simulate("nvdimm-C", spec.workload)
        hits = [hit for _, _, hit, _ in
                cached.runner.iter_specs([spec])]
        assert hits == [True]
        again = cached.simulate("nvdimm-C", spec.workload)
        assert run_result_to_dict(first) == run_result_to_dict(again)
        assert again.tenants  # the payload survives the cache round-trip

    def test_serve_validation(self, tmp_path):
        from repro.serve.server import ServeConfig, ServeDaemon, ServeError
        daemon = ServeDaemon(ServeConfig(state_dir=tmp_path / "state",
                                         scale=SCALE))
        good = scenario_run_spec(trio_spec(), "mmap")
        assert daemon._validate_specs([good.to_dict()])[0] == good
        bad = dataclasses.replace(
            good, workload=scenario_source(ScenarioSpec(
                name="bad", tenants=(TenantSpec(workload="nope"),))))
        with pytest.raises(ServeError, match="tenant workload"):
            daemon._validate_specs([bad.to_dict()])
        with pytest.raises(ServeError, match="not a scenario|malformed"):
            daemon._validate_specs([dataclasses.replace(
                good, workload="scenario:not-json").to_dict()])
