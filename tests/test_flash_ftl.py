"""FTL: mapping, overwrite invalidation, striping, garbage collection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import FlashGeometry
from repro.flash.ftl import FlashTranslationLayer


def tiny_geometry(**overrides) -> FlashGeometry:
    params = dict(channels=2, packages_per_channel=1, dies_per_package=1,
                  planes_per_die=1, blocks_per_plane=8, pages_per_block=8,
                  overprovision=0.25)
    params.update(overrides)
    return FlashGeometry(**params)


class TestMapping:
    def test_unmapped_lookup_returns_none(self):
        ftl = FlashTranslationLayer(tiny_geometry())
        assert ftl.lookup(0) is None
        assert not ftl.is_mapped(0)

    def test_write_then_lookup(self):
        ftl = FlashTranslationLayer(tiny_geometry())
        address, _ = ftl.write(5)
        assert ftl.lookup(5) == address
        assert ftl.is_mapped(5)

    def test_overwrite_moves_to_new_physical_page(self):
        ftl = FlashTranslationLayer(tiny_geometry())
        first, _ = ftl.write(5)
        second, _ = ftl.write(5)
        assert first != second
        assert ftl.lookup(5) == second

    def test_out_of_range_lpn_rejected(self):
        ftl = FlashTranslationLayer(tiny_geometry())
        with pytest.raises(ValueError):
            ftl.write(ftl.geometry.logical_pages)
        with pytest.raises(ValueError):
            ftl.lookup(-1)

    def test_trim_removes_mapping(self):
        ftl = FlashTranslationLayer(tiny_geometry())
        ftl.write(3)
        ftl.trim(3)
        assert ftl.lookup(3) is None

    def test_mapped_pages_counter(self):
        ftl = FlashTranslationLayer(tiny_geometry())
        for lpn in range(4):
            ftl.write(lpn)
        ftl.write(0)  # overwrite does not add a mapping
        assert ftl.mapped_pages == 4


class TestStriping:
    def test_sequential_writes_spread_across_planes(self):
        ftl = FlashTranslationLayer(tiny_geometry())
        addresses = [ftl.write(lpn)[0] for lpn in range(4)]
        channels = {address.channel for address in addresses}
        assert len(channels) > 1


class TestGarbageCollection:
    def test_gc_triggers_when_blocks_run_out(self):
        geometry = tiny_geometry(blocks_per_plane=4, pages_per_block=4)
        ftl = FlashTranslationLayer(geometry, gc_threshold_blocks=1)
        # Repeatedly overwrite a small working set so invalid pages pile up.
        for round_index in range(20):
            for lpn in range(4):
                ftl.write(lpn)
        assert ftl.gc_invocations > 0
        stats = ftl.statistics()
        assert stats["write_amplification"] >= 1.0

    def test_gc_preserves_all_mappings(self):
        geometry = tiny_geometry(blocks_per_plane=4, pages_per_block=4)
        ftl = FlashTranslationLayer(geometry, gc_threshold_blocks=1)
        working_set = list(range(6))
        for _ in range(15):
            for lpn in working_set:
                ftl.write(lpn)
        # Every logical page still resolves, and all physical addresses are
        # distinct (no two LPNs share a physical page after relocation).
        physical = [ftl.lookup(lpn) for lpn in working_set]
        assert all(address is not None for address in physical)
        assert len(set(physical)) == len(working_set)

    def test_erase_counts_grow_with_gc(self):
        geometry = tiny_geometry(blocks_per_plane=4, pages_per_block=4)
        ftl = FlashTranslationLayer(geometry, gc_threshold_blocks=1)
        for _ in range(20):
            for lpn in range(4):
                ftl.write(lpn)
        assert sum(ftl.erase_counts()) > 0

    def test_device_full_raises(self):
        geometry = tiny_geometry(blocks_per_plane=2, pages_per_block=2,
                                 overprovision=0.0)
        # Garbage collection disabled: overwrites keep consuming fresh pages
        # without ever reclaiming the invalidated ones.
        ftl = FlashTranslationLayer(geometry, gc_threshold_blocks=0)
        with pytest.raises(RuntimeError):
            for _ in range(geometry.physical_pages + 1):
                ftl.write(0)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=15),
                    min_size=1, max_size=200))
    def test_mapping_always_reflects_last_write(self, lpns):
        geometry = tiny_geometry(blocks_per_plane=16, pages_per_block=8)
        ftl = FlashTranslationLayer(geometry, gc_threshold_blocks=1)
        last_written = {}
        for lpn in lpns:
            address, _ = ftl.write(lpn)
            last_written[lpn] = address
        # After any interleaving of writes (with possible GC relocation),
        # every LPN still maps somewhere, and distinct LPNs never alias.
        resolved = {lpn: ftl.lookup(lpn) for lpn in last_written}
        assert all(address is not None for address in resolved.values())
        assert len(set(resolved.values())) == len(resolved)
