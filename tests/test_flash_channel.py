"""Flash channel scheduler: serialisation per channel, load balancing."""

import pytest

from repro.config import FlashGeometry
from repro.flash.channel import ChannelScheduler
from repro.units import mb_per_s


def scheduler(channels: int = 4) -> ChannelScheduler:
    geometry = FlashGeometry(channels=channels)
    return ChannelScheduler(geometry, mb_per_s(800))


class TestTransferTiming:
    def test_transfer_time_scales_with_size(self):
        sched = scheduler()
        assert sched.transfer_time(8192) == pytest.approx(
            2 * sched.transfer_time(4096))

    def test_reserve_idle_channel(self):
        sched = scheduler()
        start, finish = sched.reserve(0, 4096, 100.0)
        assert start == 100.0
        assert finish == pytest.approx(100.0 + sched.transfer_time(4096))

    def test_same_channel_serialises(self):
        sched = scheduler()
        _, first_finish = sched.reserve(0, 4096, 0.0)
        start, _ = sched.reserve(0, 4096, 0.0)
        assert start == pytest.approx(first_finish)

    def test_different_channels_overlap(self):
        sched = scheduler()
        sched.reserve(0, 4096, 0.0)
        start, _ = sched.reserve(1, 4096, 0.0)
        assert start == 0.0


class TestLoadBalancing:
    def test_least_loaded_prefers_idle(self):
        sched = scheduler()
        sched.reserve(0, 1 << 20, 0.0)
        choices = sched.least_loaded(0.0, count=2)
        assert 0 not in choices

    def test_least_loaded_count_validation(self):
        with pytest.raises(ValueError):
            scheduler().least_loaded(0.0, count=0)

    def test_next_free(self):
        sched = scheduler()
        _, finish = sched.reserve(2, 4096, 0.0)
        assert sched.next_free(2, 0.0) == pytest.approx(finish)
        assert sched.next_free(3, 50.0) == 50.0


class TestValidation:
    def test_unknown_channel_rejected(self):
        with pytest.raises(ValueError):
            scheduler().reserve(99, 4096, 0.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            ChannelScheduler(FlashGeometry(channels=1), 0.0)

    def test_summary_and_reset(self):
        sched = scheduler()
        sched.reserve(0, 4096, 0.0)
        summary = sched.utilisation_summary()
        assert summary["bytes_moved"] == 4096
        assert summary["transfers"] == 1
        sched.reset()
        assert sched.utilisation_summary()["bytes_moved"] == 0
