"""Tests for the adaptive sweep driver (:mod:`repro.sweep`) and the
sweep-surface bugfix batch that shipped with it.

The load-bearing contracts:

1. **Grid-cell parity** — every cell an adaptive sweep evaluates is
   bit-identical to the same cell from a fixed-grid ``Session.sweep``,
   and the two share run-cache entries.
2. **Tier determinism** — the refinement path (which cells, which
   rounds) and the knees are identical on the serial, pool and sharded
   executors.
3. **Cost honesty** — the budget cap is honoured, pruned cells are
   recorded rather than silently dropped, and cache-resolved cells cost
   zero (a re-run of the same sweep spends nothing).
4. **The bugfix batch** — duplicate sweep labels raise instead of
   silently collapsing result keys; conflicting one-shot execution knobs
   raise instead of half-applying; progress ETA edges report ``None``
   instead of dividing by zero or leaking ``inf`` into event records.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.api import Session, compare, sweep
from repro.exec import (
    Event,
    SerialExecutor,
    ShardedExecutor,
    compute_eta,
)
from repro.runner.artifacts import run_result_to_dict
from repro.runner.events import RUN_FINISH
from repro.runner.specs import RunSpec
from repro.sweep import (
    STOP_BUDGET,
    SWEEP_SCHEMA,
    AdaptiveSweepDriver,
    curvature_scores,
    knee_index,
    load_sweep_record,
    refinement_candidates,
    seed_indices,
    sweep_labels,
    write_sweep_record,
)
from repro.workloads.registry import ExperimentScale

TINY = ExperimentScale(capacity_scale=1 / 512, min_accesses=120,
                       max_accesses=240)
KB = 1024
#: A dense 4 KB-multiple page-size grid (mos_page_bytes validation).
GRID = [4 * KB * step for step in range(1, 17)]


def tiny_session(**kwargs) -> Session:
    return Session(TINY, workers=1, **kwargs)


def run_adaptive(session, workloads=("rndRd",), **kwargs):
    kwargs.setdefault("tolerance", 0.01)
    kwargs.setdefault("seed_points", 5)
    return session.adaptive_sweep("hams-TE", list(workloads), "hams",
                                  "mos_page_bytes", GRID, **kwargs)


# ---------------------------------------------------------------------------
# Refinement geometry (pure helpers)
# ---------------------------------------------------------------------------


class TestRefinementGeometry:
    def test_linear_curve_has_zero_curvature_and_no_knee(self):
        curve = {0: 1.0, 4: 5.0, 9: 10.0}
        assert all(score == 0.0
                   for score in curvature_scores(curve).values())
        assert knee_index(curve) is None
        assert refinement_candidates(curve, tolerance=0.0) == set()

    def test_knee_is_the_max_curvature_index(self):
        curve = {0: 0.0, 4: 8.0, 8: 10.0}  # bends upward at 4
        scores = curvature_scores(curve)
        assert scores[4] == pytest.approx(3.0 / 10.0)
        assert knee_index(curve) == 4

    def test_fewer_than_three_points_score_nothing(self):
        assert curvature_scores({0: 1.0, 9: 2.0}) == {}
        assert knee_index({0: 1.0, 9: 2.0}) is None

    def test_refinement_bisects_both_flanking_intervals(self):
        curve = {0: 0.0, 4: 8.0, 8: 10.0}
        assert refinement_candidates(curve, tolerance=0.1) == {2, 6}

    def test_unit_intervals_cannot_refine_further(self):
        curve = {3: 0.0, 4: 8.0, 5: 10.0}
        assert refinement_candidates(curve, tolerance=0.1) == set()

    def test_tolerance_gates_refinement(self):
        curve = {0: 0.0, 4: 8.0, 8: 10.0}  # score 0.3 at index 4
        assert refinement_candidates(curve, tolerance=0.5) == set()

    def test_all_zero_curve_is_settled(self):
        curve = {0: 0.0, 4: 0.0, 8: 0.0}
        assert knee_index(curve) is None
        assert refinement_candidates(curve, tolerance=0.0) == set()

    def test_seed_indices_include_endpoints(self):
        assert seed_indices(16, 5) == [0, 4, 8, 11, 15]
        assert seed_indices(16, 2) == [0, 15]
        assert seed_indices(2, 5) == [0, 1]
        assert seed_indices(1, 5) == [0]
        with pytest.raises(ValueError):
            seed_indices(0, 5)


# ---------------------------------------------------------------------------
# The driver on a live session
# ---------------------------------------------------------------------------


class TestAdaptiveDriver:
    def test_evaluated_cells_are_bit_identical_to_the_fixed_grid(
            self, tmp_path):
        session = tiny_session(cache_dir=tmp_path / "adaptive")
        adaptive = run_adaptive(session)
        indices = adaptive.evaluated_indices("rndRd")
        assert indices, "the sweep evaluated nothing"
        assert indices[0] == 0 and indices[-1] == len(GRID) - 1, \
            "seeding must pin both grid endpoints"

        grid_session = tiny_session(cache_dir=tmp_path / "grid")
        grid = grid_session.sweep(
            "hams-TE", ["rndRd"], "hams", "mos_page_bytes",
            [GRID[index] for index in indices])
        for cell in adaptive.evaluated_cells:
            ours = adaptive.experiment.get(cell.label, "rndRd")
            theirs = grid.get(cell.label, "rndRd")
            assert json.dumps(run_result_to_dict(ours), sort_keys=True) \
                == json.dumps(run_result_to_dict(theirs), sort_keys=True)

    def test_cells_share_cache_entries_with_the_fixed_grid(self, tmp_path):
        """The grid warms the cache; the adaptive run runs nothing."""
        cache = tmp_path / "shared"
        tiny_session(cache_dir=cache).sweep(
            "hams-TE", ["rndRd"], "hams", "mos_page_bytes", GRID)
        adaptive = run_adaptive(tiny_session(cache_dir=cache))
        assert adaptive.evaluated_cells == []
        assert len(adaptive.skipped_cells) > 0
        assert all(cell.cache_hit and cell.cost == 0
                   for cell in adaptive.skipped_cells)
        assert adaptive.spent_cost == 0

    @pytest.mark.parametrize("executor,shards", [
        ("serial", None), ("pool", None), ("sharded", 2)])
    def test_refinement_path_is_identical_on_every_tier(
            self, tmp_path, executor, shards):
        reference = run_adaptive(
            tiny_session(cache_dir=tmp_path / "reference"))
        session = tiny_session(cache_dir=tmp_path / "tier",
                               executor=executor, shards=shards)
        result = run_adaptive(session)
        path = [(round_.number,
                 sorted((cell.workload, cell.index)
                        for cell in round_.evaluated))
                for round_ in result.rounds]
        expected = [(round_.number,
                     sorted((cell.workload, cell.index)
                            for cell in round_.evaluated))
                    for round_ in reference.rounds]
        assert path == expected
        assert result.knees == reference.knees
        assert result.stop_reason == reference.stop_reason
        for cell in result.evaluated_cells:
            ours = result.experiment.get(cell.label, "rndRd")
            theirs = reference.experiment.get(cell.label, "rndRd")
            assert run_result_to_dict(ours) == run_result_to_dict(theirs)

    def test_budget_is_honoured_and_pruning_is_recorded(self, tmp_path):
        probe = AdaptiveSweepDriver(
            tiny_session(), "hams-TE", ["rndRd"], "hams", "mos_page_bytes",
            GRID)
        per_cell = probe.grid_cost() // len(GRID)
        budget = per_cell * 4  # room for 4 of the 5 seed cells
        result = run_adaptive(tiny_session(cache_dir=tmp_path / "budget"),
                              tolerance=0.0, budget=budget)
        assert result.spent_cost <= budget
        assert result.pruned_cells, "over-budget cells must be recorded"
        assert result.stop_reason == STOP_BUDGET
        # Pruned cells never entered the experiment.
        resolved = {cell.index for cell in result.evaluated_cells}
        assert all(index not in resolved
                   for _, index in result.pruned_cells)

    def test_rerun_resolves_everything_from_cache(self, tmp_path):
        session = tiny_session(cache_dir=tmp_path / "cache")
        first = run_adaptive(session)
        assert first.evaluated_cells and first.spent_cost > 0
        second = run_adaptive(session)
        assert second.evaluated_cells == []
        assert {cell.index for cell in second.skipped_cells} \
            == {cell.index for cell in first.evaluated_cells}
        assert second.spent_cost == 0
        assert second.knees == first.knees

    def test_settle_rounds_stops_a_stable_workload(self, tmp_path):
        result = run_adaptive(tiny_session(cache_dir=tmp_path / "settle"),
                              tolerance=0.0, settle_rounds=1, max_rounds=6)
        # tolerance 0 refines forever on a noisy curve; the settled knee
        # must cut it off with the remaining candidates recorded.
        assert result.settled_cells or result.stop_reason != "max-rounds"

    def test_driver_rejects_bad_grids(self):
        session = tiny_session()
        with pytest.raises(ValueError, match="strictly increasing"):
            session.adaptive_sweep("hams-TE", ["rndRd"], "hams",
                                   "mos_page_bytes", [8192, 4096])
        with pytest.raises(ValueError, match="numeric"):
            session.adaptive_sweep("hams-TE", ["rndRd"], "hams",
                                   "mos_page_bytes", ["a", "b"])
        with pytest.raises(ValueError, match="at least one value"):
            session.adaptive_sweep("hams-TE", ["rndRd"], "hams",
                                   "mos_page_bytes", [])
        with pytest.raises(ValueError, match="at least one workload"):
            session.adaptive_sweep("hams-TE", [], "hams",
                                   "mos_page_bytes", GRID)
        with pytest.raises(ValueError, match="tolerance"):
            run_adaptive(session, tolerance=-0.1)
        with pytest.raises(ValueError, match="budget"):
            run_adaptive(session, budget=-1)
        with pytest.raises(ValueError, match="metric"):
            run_adaptive(session, metric="no_such_attribute")

    def test_sweep_record_round_trips(self, tmp_path):
        session = tiny_session(cache_dir=tmp_path / "cache")
        result = run_adaptive(session, name="recorded")
        path = write_sweep_record(tmp_path, "recorded", result,
                                  session.config)
        payload = load_sweep_record(path)
        assert payload["schema"] == SWEEP_SCHEMA
        assert payload["values"] == GRID
        assert payload["knees"] == {
            workload: value for workload, value in result.knees.items()}
        totals = payload["totals"]
        assert totals["evaluated"] == len(result.evaluated_cells)
        assert totals["spent_cost"] == result.spent_cost
        assert totals["grid_cost"] == result.grid_cost
        evaluated = [cell for round_ in payload["rounds"]
                     for cell in round_["evaluated"]]
        assert len(evaluated) == totals["evaluated"]
        assert all(cell["key"] for cell in evaluated)
        with pytest.raises(ValueError, match="schema"):
            bad = tmp_path / "bad.sweep.json"
            bad.write_text("{}", encoding="utf-8")
            load_sweep_record(bad)


# ---------------------------------------------------------------------------
# Bugfix: duplicate sweep labels
# ---------------------------------------------------------------------------


class TestDuplicateSweepLabels:
    def test_int_and_string_value_collapse_is_rejected(self):
        # 4096 and "4096" stringify identically: before the fix the second
        # run silently overwrote the first under the same result key.
        with pytest.raises(ValueError, match="duplicate sweep label"):
            tiny_session().sweep("hams-TE", ["seqRd"], "hams",
                                 "mos_page_bytes", [4096, "4096"])

    def test_duplicate_explicit_labels_are_rejected(self):
        with pytest.raises(ValueError, match="duplicate sweep label"):
            tiny_session().sweep("hams-TE", ["seqRd"], "hams",
                                 "mos_page_bytes", [4 * KB, 8 * KB],
                                 labels=["same", "same"])

    def test_one_shot_sweep_rejects_duplicates_too(self):
        with pytest.raises(ValueError, match="duplicate sweep label"):
            sweep("hams-TE", ["seqRd"], "hams", "mos_page_bytes",
                  [4096, "4096"], scale=TINY, workers=1)

    def test_adaptive_sweep_rejects_duplicate_labels(self):
        with pytest.raises(ValueError, match="duplicate sweep label"):
            tiny_session().adaptive_sweep(
                "hams-TE", ["seqRd"], "hams", "mos_page_bytes",
                [4 * KB, 8 * KB], labels=["x", "x"])

    def test_distinct_labels_still_work(self):
        assert sweep_labels([4 * KB, 8 * KB]) == ["4096", "8192"]
        assert sweep_labels([4 * KB, 8 * KB], ["4KB", "8KB"]) \
            == ["4KB", "8KB"]

    def test_label_count_mismatch_still_raises(self):
        with pytest.raises(ValueError, match="labels must match values"):
            sweep_labels([1, 2, 3], ["one"])


# ---------------------------------------------------------------------------
# Bugfix: conflicting one-shot execution knobs
# ---------------------------------------------------------------------------


class TestOneShotKnobValidation:
    def test_non_sharded_tier_rejects_shards(self):
        with pytest.raises(ValueError, match="does not shard"):
            compare(["mmap"], ["seqRd"], scale=TINY, workers=1,
                    executor="pool", shards=2)

    def test_executor_instance_rejects_shards(self):
        # Before the fix the sharded tier half-applied: shards was dropped
        # on the floor for any instance that was not a ShardedExecutor.
        with pytest.raises(ValueError, match="Executor instance"):
            sweep("hams-TE", ["seqRd"], "hams", "mos_page_bytes",
                  [4 * KB], scale=TINY, workers=1,
                  executor=SerialExecutor(), shards=2)

    def test_sharded_only_knobs_need_a_sharded_tier(self, tmp_path):
        with pytest.raises(ValueError, match="spool_dir"):
            compare(["mmap"], ["seqRd"], scale=TINY, workers=1,
                    spool_dir=tmp_path / "spool")
        with pytest.raises(ValueError, match="wait_timeout"):
            compare(["mmap"], ["seqRd"], scale=TINY, workers=1,
                    executor="serial", wait_timeout=5.0)
        with pytest.raises(ValueError, match="spool_dir and wait_timeout"):
            compare(["mmap"], ["seqRd"], scale=TINY, workers=1,
                    executor=SerialExecutor(),
                    spool_dir=tmp_path / "spool", wait_timeout=5.0)

    def test_legal_sharded_combinations_still_pass(self, tmp_path):
        # The symmetric trio (shards + spool_dir + wait_timeout) and every
        # sharded spelling keep working — only conflicts are rejected.
        compare(["mmap"], ["seqRd"], scale=TINY, workers=1, shards=2,
                spool_dir=tmp_path / "a", wait_timeout=60.0)
        compare(["mmap"], ["seqRd"], scale=TINY, workers=1,
                executor="sharded", spool_dir=tmp_path / "b")
        compare(["mmap"], ["seqRd"], scale=TINY, workers=1,
                executor=ShardedExecutor(shards=2),
                spool_dir=tmp_path / "c", wait_timeout=60.0)


# ---------------------------------------------------------------------------
# Bugfix: progress ETA guards
# ---------------------------------------------------------------------------


class TestProgressEtaGuards:
    def test_zero_completed_has_no_eta(self):
        assert compute_eta(0, 5, 10.0) is None

    def test_done_has_no_eta(self):
        assert compute_eta(5, 5, 10.0) is None
        assert compute_eta(6, 5, 10.0) is None

    def test_zero_elapsed_has_no_eta(self):
        # A clock too coarse to have ticked yet (or a burst of pure cache
        # hits) must not extrapolate a zero or negative ETA.
        assert compute_eta(2, 5, 0.0) is None
        assert compute_eta(2, 5, -1.0) is None

    def test_non_finite_extrapolation_has_no_eta(self):
        assert compute_eta(1, 5, float("inf")) is None

    def test_happy_path_still_estimates(self):
        assert compute_eta(2, 6, 10.0) == pytest.approx(20.0)

    def test_fresh_handle_reports_none_eta(self):
        handle = tiny_session().submit([RunSpec("mmap", "seqRd")])
        snapshot = handle.progress()
        assert snapshot.completed == 0
        assert snapshot.eta_s is None
        assert "eta" not in snapshot.format()
        handle.result()
        assert handle.progress().eta_s is None

    def test_events_never_serialise_non_finite_floats(self):
        event = Event(kind=RUN_FINISH, index=0,
                      operations_per_second=float("inf"))
        record = event.to_record()
        assert "operations_per_second" not in record
        nan_event = Event(kind=RUN_FINISH, index=0,
                          operations_per_second=float("nan"))
        assert "operations_per_second" not in nan_event.to_record()
        # The emitted line is strict JSON (no bare Infinity/NaN tokens).
        parsed = json.loads(event.to_line(), parse_constant=lambda _: (
            pytest.fail("non-finite constant leaked into the record")))
        assert parsed["kind"] == RUN_FINISH
        finite = Event(kind=RUN_FINISH, index=0,
                       operations_per_second=123.5)
        assert finite.to_record()["operations_per_second"] == 123.5
        assert math.isfinite(json.loads(finite.to_line())
                             ["operations_per_second"])


# ---------------------------------------------------------------------------
# The CLI verb
# ---------------------------------------------------------------------------


class TestSweepCli:
    def test_adaptive_cli_writes_artifact_and_record(self, tmp_path,
                                                     capsys):
        from repro.runner.cli import main
        argv = ["sweep", "--platform", "hams-TE", "--workloads", "rndRd",
                "--section", "hams", "--field", "mos_page_bytes",
                "--values"] + [str(value) for value in GRID] + [
                "--adaptive", "--tolerance", "0.01", "--seed-points", "5",
                "--capacity-scale", str(1 / 512),
                "--min-accesses", "120", "--max-accesses", "240",
                "--workers", "1", "--executor", "serial",
                "--name", "cli-adaptive",
                "--output-dir", str(tmp_path)]
        assert main(argv) == 0
        artifact = json.loads(
            (tmp_path / "cli-adaptive.json").read_text(encoding="utf-8"))
        assert artifact["meta"]["sweep"]["mode"] == "adaptive"
        record = load_sweep_record(tmp_path / "cli-adaptive.sweep.json")
        assert record["totals"]["evaluated"] == len(artifact["runs"])
        out = capsys.readouterr().out
        assert "knees:" in out

    def test_fixed_grid_cli_diffs_clean_against_adaptive(self, tmp_path,
                                                         capsys):
        from repro.runner.cli import main
        scale_args = ["--capacity-scale", str(1 / 512),
                      "--min-accesses", "120", "--max-accesses", "240",
                      "--workers", "1", "--executor", "serial",
                      "--output-dir", str(tmp_path)]
        base = ["sweep", "--platform", "hams-TE", "--workloads", "rndRd",
                "--section", "hams", "--field", "mos_page_bytes",
                "--values"] + [str(value) for value in GRID]
        assert main(base + ["--adaptive", "--name", "adaptive", "--quiet"]
                    + scale_args) == 0
        assert main(base + ["--name", "grid", "--quiet"] + scale_args) == 0
        # One-directional on purpose: every adaptive cell must exist in
        # the grid artifact, bit-identical (threshold 0).
        assert main(["report", "--diff", str(tmp_path / "adaptive.json"),
                     str(tmp_path / "grid.json"), "--threshold", "0"]) == 0

    def test_duplicate_label_error_exits_2(self, tmp_path, capsys):
        from repro.runner.cli import main
        argv = ["sweep", "--platform", "hams-TE", "--workloads", "seqRd",
                "--section", "hams", "--field", "mos_page_bytes",
                "--values", "4096", "8192", "--labels", "x", "x",
                "--capacity-scale", str(1 / 512),
                "--min-accesses", "120", "--max-accesses", "240",
                "--workers", "1", "--executor", "serial",
                "--output-dir", str(tmp_path)]
        assert main(argv) == 2
        assert "duplicate sweep label" in capsys.readouterr().err
