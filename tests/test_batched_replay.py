"""Golden equivalence of the batched and scalar replay paths.

The batched replay loop (chunked cache filtering, ``service_batch``,
``sequential_add`` accounting) promises results that are *bit-identical* to
the legacy scalar loop on every registered platform — not approximately
equal: every float in the ``RunResult``, including the energy breakdown and
the extras counters, must match to the last ulp.  These tests are the
contract that lets the vectorized platforms rewrite their hot paths freely.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import default_config
from repro.numerics import sequential_add
from repro.platforms.registry import available_platforms, create_platform
from repro.workloads.registry import (
    ExperimentScale,
    build_trace,
    scale_system_config,
)

#: Smoke-scale traces: small enough for the full platform matrix, large
#: enough to exercise cache evictions, page-cache misses and migrations.
SCALE = ExperimentScale(capacity_scale=1 / 256, min_accesses=200,
                        max_accesses=600)

#: One page-granular (cache-bypassing) and one fine-grained (cache-filtered)
#: workload; together they cover both classification paths of the chunk
#: filter and both write-heavy and read-heavy service streams.
WORKLOADS = ("seqRd", "rndWr", "update")


@pytest.fixture(scope="module")
def config():
    return scale_system_config(default_config(), SCALE)


@pytest.fixture(scope="module")
def traces():
    return {workload: build_trace(workload, SCALE)
            for workload in WORKLOADS}


def result_fields(result) -> dict:
    return dataclasses.asdict(result)


@pytest.mark.parametrize("platform_name", available_platforms())
@pytest.mark.parametrize("workload", WORKLOADS)
def test_batched_replay_is_bit_identical(platform_name, workload, config,
                                         traces):
    trace = traces[workload]
    scalar = create_platform(platform_name, config).run(trace,
                                                        execution="scalar")
    batched = create_platform(platform_name, config).run(trace,
                                                         execution="batched")
    scalar_fields = result_fields(scalar)
    batched_fields = result_fields(batched)
    mismatched = {key for key in scalar_fields
                  if scalar_fields[key] != batched_fields[key]}
    assert not mismatched, {
        key: (scalar_fields[key], batched_fields[key]) for key in mismatched}


def test_default_mode_is_batched(config, traces):
    platform = create_platform("oracle", config)
    assert platform.replay_mode == "batched"
    reference = create_platform("oracle", config).run(traces["seqRd"],
                                                      execution="batched")
    assert result_fields(platform.run(traces["seqRd"])) \
        == result_fields(reference)


def test_unknown_execution_mode_rejected(config, traces):
    platform = create_platform("oracle", config)
    with pytest.raises(ValueError):
        platform.run(traces["seqRd"], execution="warp")


def test_chunk_size_does_not_change_results(config, traces):
    """The chunk boundary is an implementation detail, not a model input."""
    trace = traces["update"]
    reference = create_platform("hams-TE", config).run(trace)
    for chunk_size in (1, 7, 64, 10_000):
        platform = create_platform("hams-TE", config)
        platform.replay_chunk_size = chunk_size
        assert result_fields(platform.run(trace)) \
            == result_fields(reference), chunk_size


def test_sequential_add_matches_python_accumulation():
    rng = np.random.default_rng(11)
    addends = rng.random(4_321) * 1e7
    expected = 0.123
    for value in addends.tolist():
        expected += value
    assert sequential_add(0.123, addends) == expected
    assert sequential_add(5.0, np.empty(0)) == 5.0


def test_cache_statistics_match_between_paths(config, traces):
    """record_bypass/access_batch leave the hierarchy exactly as the scalar
    walk does (the extras comparison above covers rates; this pins the raw
    counters)."""
    trace = traces["update"]
    scalar = create_platform("oracle", config)
    scalar.run(trace, execution="scalar")
    batched = create_platform("oracle", config)
    batched.run(trace, execution="batched")
    assert scalar.caches.statistics() == batched.caches.statistics()
    assert scalar.caches.l1.hits == batched.caches.l1.hits
    assert scalar.caches.l2.writebacks == batched.caches.l2.writebacks
