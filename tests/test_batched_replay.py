"""Golden equivalence of the batched and scalar replay paths.

The batched replay loop (chunked cache filtering, ``service_batch``,
``sequential_add`` accounting) promises results that are *bit-identical* to
the legacy scalar loop on every registered platform — not approximately
equal: every float in the ``RunResult``, including the energy breakdown and
the extras counters, must match to the last ulp.  These tests are the
contract that lets the vectorized platforms rewrite their hot paths freely.

``REPRO_TEST_CHUNK_SIZES`` (a comma-separated list, e.g. ``1,7,64``; the
token ``default`` keeps the platform default) re-runs the whole golden
matrix once per chunk size — the CI chunk-size parity leg uses it to gate
the vectorized platforms on bit-exactness at pathological chunk
boundaries.  The DRAM-cache platforms (nvdimm-C, optane-M and the ULL
bypasses), whose batched path is the order-exact ``PageCache.access_batch``
walk, additionally get a dedicated chunk-size sweep ({1, 7, whole-trace})
with explicit page-cache hit-rate / writeback assertions.
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.config import default_config
from repro.numerics import sequential_add
from repro.platforms.registry import available_platforms, create_platform
from repro.workloads.registry import (
    ExperimentScale,
    build_trace,
    scale_system_config,
)

#: Smoke-scale traces: small enough for the full platform matrix, large
#: enough to exercise cache evictions, page-cache misses and migrations.
SCALE = ExperimentScale(capacity_scale=1 / 256, min_accesses=200,
                        max_accesses=600)

#: One page-granular (cache-bypassing) and one fine-grained (cache-filtered)
#: workload; together they cover both classification paths of the chunk
#: filter and both write-heavy and read-heavy service streams.
WORKLOADS = ("seqRd", "rndWr", "update")

#: The platforms whose ``service_batch`` rides the batched LRU page-cache
#: walk, with the attribute their :class:`~repro.host.os_stack.PageCache`
#: lives under.
DRAM_CACHE_PLATFORMS = {
    "nvdimm-C": "dram_cache",
    "optane-M": "dram_cache",
    "bypass-ull": "page_buffer",
    "bypass-ull-buff": "page_buffer",
}


def _chunk_sizes():
    """Chunk sizes to sweep, from ``REPRO_TEST_CHUNK_SIZES`` (CI leg)."""
    raw = os.environ.get("REPRO_TEST_CHUNK_SIZES", "").strip()
    if not raw:
        return (None,)
    sizes = []
    for token in raw.split(","):
        token = token.strip()
        sizes.append(None if token in ("", "default") else int(token))
    return tuple(sizes)


CHUNK_SIZES = _chunk_sizes()


@pytest.fixture(scope="module")
def config():
    return scale_system_config(default_config(), SCALE)


@pytest.fixture(scope="module")
def traces():
    return {workload: build_trace(workload, SCALE)
            for workload in WORKLOADS}


def result_fields(result) -> dict:
    return dataclasses.asdict(result)


def _run_batched(platform_name, config, trace, chunk_size):
    platform = create_platform(platform_name, config)
    if chunk_size is not None:
        platform.replay_chunk_size = chunk_size
    return platform, platform.run(trace, execution="batched")


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
@pytest.mark.parametrize("platform_name", available_platforms())
@pytest.mark.parametrize("workload", WORKLOADS)
def test_batched_replay_is_bit_identical(platform_name, workload, chunk_size,
                                         config, traces):
    trace = traces[workload]
    scalar = create_platform(platform_name, config).run(trace,
                                                        execution="scalar")
    _, batched = _run_batched(platform_name, config, trace, chunk_size)
    scalar_fields = result_fields(scalar)
    batched_fields = result_fields(batched)
    mismatched = {key for key in scalar_fields
                  if scalar_fields[key] != batched_fields[key]}
    assert not mismatched, {
        key: (scalar_fields[key], batched_fields[key]) for key in mismatched}


@pytest.mark.parametrize("platform_name", sorted(DRAM_CACHE_PLATFORMS))
@pytest.mark.parametrize("workload", WORKLOADS)
def test_dram_cache_platform_chunk_parity(platform_name, workload, config,
                                          traces):
    """The batched LRU walk is exact at every chunk boundary.

    Beyond the full ``RunResult`` equality, this pins the page-cache
    observables the vectorization could most plausibly skew: the hit-rate
    extras and the raw hit/miss/dirty-writeback counters of the underlying
    :class:`~repro.host.os_stack.PageCache`.
    """
    trace = traces[workload]
    scalar_platform = create_platform(platform_name, config)
    scalar = scalar_platform.run(trace, execution="scalar")
    scalar_fields = result_fields(scalar)
    scalar_cache = getattr(scalar_platform,
                           DRAM_CACHE_PLATFORMS[platform_name])
    for chunk_size in (1, 7, len(trace)):
        platform, batched = _run_batched(platform_name, config, trace,
                                         chunk_size)
        assert result_fields(batched) == scalar_fields, chunk_size
        cache = getattr(platform, DRAM_CACHE_PLATFORMS[platform_name])
        assert cache.hits == scalar_cache.hits, chunk_size
        assert cache.misses == scalar_cache.misses, chunk_size
        assert cache.dirty_writebacks == scalar_cache.dirty_writebacks, \
            chunk_size
        assert cache.hit_rate == scalar_cache.hit_rate, chunk_size
        assert cache.resident_pages() == scalar_cache.resident_pages(), \
            chunk_size
        assert cache.dirty_pages() == scalar_cache.dirty_pages(), chunk_size


@pytest.mark.parametrize("platform_name", ("nvdimm-C", "optane-M",
                                           "bypass-ull-buff"))
def test_dram_cache_stats_exposed_and_exact(platform_name, config, traces):
    """The hit-rate / writeback extras match exactly between the paths."""
    trace = traces["rndWr"]
    scalar = create_platform(platform_name, config).run(trace,
                                                        execution="scalar")
    _, batched = _run_batched(platform_name, config, trace, None)
    prefix = ("dram_cache" if platform_name != "bypass-ull-buff"
              else "page_buffer")
    for suffix in ("hit_rate", "hits", "misses", "writebacks"):
        key = f"{prefix}_{suffix}"
        assert key in scalar.extras
        assert scalar.extras[key] == batched.extras[key], key
    assert scalar.extras[f"{prefix}_hits"] > 0


def test_default_mode_is_batched(config, traces):
    platform = create_platform("oracle", config)
    assert platform.replay_mode == "batched"
    reference = create_platform("oracle", config).run(traces["seqRd"],
                                                      execution="batched")
    assert result_fields(platform.run(traces["seqRd"])) \
        == result_fields(reference)


def test_unknown_execution_mode_rejected(config, traces):
    platform = create_platform("oracle", config)
    with pytest.raises(ValueError):
        platform.run(traces["seqRd"], execution="warp")


@pytest.mark.parametrize("platform_name", ("hams-TE", "nvdimm-C"))
def test_chunk_size_does_not_change_results(platform_name, config, traces):
    """The chunk boundary is an implementation detail, not a model input."""
    trace = traces["update"]
    reference = create_platform(platform_name, config).run(trace)
    for chunk_size in (1, 7, 64, 10_000):
        platform = create_platform(platform_name, config)
        platform.replay_chunk_size = chunk_size
        assert result_fields(platform.run(trace)) \
            == result_fields(reference), chunk_size


def test_sequential_add_matches_python_accumulation():
    rng = np.random.default_rng(11)
    addends = rng.random(4_321) * 1e7
    expected = 0.123
    for value in addends.tolist():
        expected += value
    assert sequential_add(0.123, addends) == expected
    assert sequential_add(5.0, np.empty(0)) == 5.0


def test_cache_statistics_match_between_paths(config, traces):
    """record_bypass/access_batch leave the hierarchy exactly as the scalar
    walk does (the extras comparison above covers rates; this pins the raw
    counters)."""
    trace = traces["update"]
    scalar = create_platform("oracle", config)
    scalar.run(trace, execution="scalar")
    batched = create_platform("oracle", config)
    batched.run(trace, execution="batched")
    assert scalar.caches.statistics() == batched.caches.statistics()
    assert scalar.caches.l1.hits == batched.caches.l1.hits
    assert scalar.caches.l2.writebacks == batched.caches.l2.writebacks
