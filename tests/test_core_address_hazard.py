"""Address manager (Figure 9) and hazard management (Figures 13-14)."""

import pytest

from repro.config import HAMSConfig, NVDIMMConfig
from repro.core.address_manager import AddressManager
from repro.core.hazard import HazardManager, WaitQueue, WaitQueueFullError, WaitingRequest
from repro.core.tag_array import MoSTagArray
from repro.nvme.prp import PRPPool
from repro.units import GB, KB, MB


def manager(storage_bytes: int = GB(1)) -> AddressManager:
    nvdimm = NVDIMMConfig(capacity_bytes=MB(64), pinned_region_bytes=MB(8))
    hams = HAMSConfig(mos_page_bytes=KB(128))
    return AddressManager(hams, nvdimm, storage_bytes)


class TestAddressManager:
    def test_mos_capacity_equals_storage(self):
        assert manager(GB(2)).mos_capacity_bytes == GB(2)

    def test_decompose_roundtrip(self):
        mgr = manager()
        address = 5 * KB(128) + 777
        decomposed = mgr.decompose(address)
        assert decomposed.mos_page == 5
        assert decomposed.offset == 777
        assert decomposed.index == mgr.tag_array.index_of(5)
        assert decomposed.tag == mgr.tag_array.tag_of(5)

    def test_nvdimm_offset(self):
        mgr = manager()
        decomposed = mgr.decompose(3 * KB(128) + 100)
        assert decomposed.nvdimm_offset(KB(128)) == decomposed.index * KB(128) + 100

    def test_out_of_range_address_rejected(self):
        mgr = manager(GB(1))
        with pytest.raises(ValueError):
            mgr.decompose(GB(1))
        with pytest.raises(ValueError):
            mgr.validate(GB(1) - 10, size_bytes=100)
        with pytest.raises(ValueError):
            mgr.validate(-1)

    def test_lba_mapping_roundtrip(self):
        mgr = manager()
        for page in (0, 1, 17, 1000):
            lba = mgr.lba_of(page)
            assert lba == page * (KB(128) // 512)
            assert mgr.mos_page_of_lba(lba) == page

    def test_lba_out_of_range(self):
        mgr = manager(GB(1))
        with pytest.raises(ValueError):
            mgr.lba_of(mgr.mos_pages)

    def test_pinned_region_at_top_of_nvdimm(self):
        mgr = manager()
        assert mgr.pinned_region_base == MB(64) - MB(8)
        assert mgr.is_pinned(MB(64) - 1)
        assert not mgr.is_pinned(0)

    def test_pinned_check_bounds(self):
        mgr = manager()
        with pytest.raises(ValueError):
            mgr.is_pinned(MB(64))

    def test_cache_slots_never_overlap_pinned_region(self):
        mgr = manager()
        last_index = mgr.tag_array.entries_count - 1
        offset = mgr.cache_slot_offset(last_index)
        assert offset + KB(128) <= mgr.pinned_region_base

    def test_statistics(self):
        stats = manager().statistics()
        assert stats["pinned_region_bytes"] == MB(8)
        assert stats["mos_pages"] > 0


class TestWaitQueue:
    def test_fifo_order(self):
        queue = WaitQueue(depth=4)
        queue.push(WaitingRequest(1, False, 0.0))
        queue.push(WaitingRequest(2, True, 1.0))
        assert queue.pop().mos_page == 1
        assert queue.pop().mos_page == 2
        assert queue.pop() is None

    def test_overflow(self):
        queue = WaitQueue(depth=1)
        queue.push(WaitingRequest(1, False, 0.0))
        with pytest.raises(WaitQueueFullError):
            queue.push(WaitingRequest(2, False, 0.0))

    def test_pending_for(self):
        queue = WaitQueue(depth=4)
        queue.push(WaitingRequest(1, False, 0.0))
        queue.push(WaitingRequest(1, True, 1.0))
        queue.push(WaitingRequest(2, False, 2.0))
        assert len(queue.pending_for(1)) == 2

    def test_occupancy_tracking(self):
        queue = WaitQueue(depth=4)
        queue.push(WaitingRequest(1, False, 0.0))
        queue.push(WaitingRequest(2, False, 0.0))
        queue.pop()
        assert queue.max_occupancy == 2
        assert queue.enqueued_total == 2


def _hazards(entries: int = 8) -> HazardManager:
    tag_array = MoSTagArray(entries * KB(128), KB(128))
    pool = PRPPool(MB(1), KB(128))
    return HazardManager(tag_array, pool, wait_queue_depth=16)


class TestHazardManager:
    def test_begin_miss_sets_busy_and_clones_victim(self):
        hazards = _hazards()
        clone = hazards.begin_miss(index=2, mos_page=10, victim_page=2,
                                   command_id=1, completes_at_ns=100.0)
        assert clone is not None
        assert clone.source_page == 2
        assert hazards.is_busy(2)
        assert hazards.evictions_cloned == 1
        assert hazards.busy_until(2) == 100.0

    def test_begin_miss_without_victim_skips_clone(self):
        hazards = _hazards()
        clone = hazards.begin_miss(index=1, mos_page=9, victim_page=None,
                                   command_id=2, completes_at_ns=50.0)
        assert clone is None
        assert hazards.prp_pool.in_use == 0

    def test_begin_miss_on_busy_entry_rejected(self):
        hazards = _hazards()
        hazards.begin_miss(index=0, mos_page=8, victim_page=None,
                           command_id=1, completes_at_ns=10.0)
        with pytest.raises(RuntimeError):
            hazards.begin_miss(index=0, mos_page=16, victim_page=None,
                               command_id=2, completes_at_ns=20.0)

    def test_complete_miss_releases_everything(self):
        hazards = _hazards()
        hazards.begin_miss(index=3, mos_page=11, victim_page=3,
                           command_id=7, completes_at_ns=10.0)
        hazards.complete_miss(3)
        assert not hazards.is_busy(3)
        assert hazards.prp_pool.in_use == 0
        assert hazards.outstanding_operations == 0

    def test_complete_unknown_index_is_noop(self):
        _hazards().complete_miss(5)

    def test_attach_command_extends_completion(self):
        hazards = _hazards()
        hazards.begin_miss(index=1, mos_page=9, victim_page=None,
                           command_id=1, completes_at_ns=10.0)
        hazards.attach_command(1, command_id=2, completes_at_ns=200.0)
        assert hazards.busy_until(1) == 200.0

    def test_attach_to_unknown_operation_rejected(self):
        with pytest.raises(KeyError):
            _hazards().attach_command(4, command_id=1, completes_at_ns=1.0)

    def test_park_counts_redundant_eviction(self):
        """A second miss on a busy entry is parked, not re-issued (Figure 14)."""
        hazards = _hazards()
        hazards.begin_miss(index=0, mos_page=8, victim_page=0,
                           command_id=1, completes_at_ns=100.0)
        hazards.park(mos_page=16, is_write=True, at_ns=50.0)
        assert hazards.redundant_evictions_avoided == 1
        assert len(hazards.wait_queue) == 1
        drained = hazards.drain_parked()
        assert len(drained) == 1
        assert drained[0].mos_page == 16

    def test_statistics(self):
        hazards = _hazards()
        hazards.begin_miss(index=0, mos_page=8, victim_page=0,
                           command_id=1, completes_at_ns=10.0)
        hazards.park(16, False, 5.0)
        stats = hazards.statistics()
        assert stats["evictions_cloned"] == 1
        assert stats["redundant_evictions_avoided"] == 1
        assert stats["prp_peak_in_use"] == 1
