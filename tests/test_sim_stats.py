"""Statistics: counters, streaming latency aggregates, histograms."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Counter, Histogram, LatencyStat, StatRegistry


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0.0

    def test_add(self):
        counter = Counter("x")
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_reset(self):
        counter = Counter("x")
        counter.add(5)
        counter.reset()
        assert counter.value == 0.0


class TestLatencyStat:
    def test_mean_and_count(self):
        stat = LatencyStat("lat")
        for sample in [10.0, 20.0, 30.0]:
            stat.record(sample)
        assert stat.count == 3
        assert stat.mean == pytest.approx(20.0)
        assert stat.min == 10.0
        assert stat.max == 30.0
        assert stat.total == 60.0

    def test_stddev(self):
        stat = LatencyStat("lat")
        for sample in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            stat.record(sample)
        assert stat.stddev == pytest.approx(2.138, abs=1e-2)

    def test_empty_stat_is_safe(self):
        stat = LatencyStat("lat")
        assert stat.mean == 0.0
        assert stat.variance == 0.0

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            LatencyStat("lat").record(-1.0)

    def test_merge_matches_single_stream(self):
        combined = LatencyStat("all")
        part_a = LatencyStat("a")
        part_b = LatencyStat("b")
        samples_a = [1.0, 5.0, 9.0]
        samples_b = [2.0, 4.0, 100.0, 3.0]
        for sample in samples_a:
            part_a.record(sample)
            combined.record(sample)
        for sample in samples_b:
            part_b.record(sample)
            combined.record(sample)
        part_a.merge(part_b)
        assert part_a.count == combined.count
        assert part_a.mean == pytest.approx(combined.mean)
        assert part_a.variance == pytest.approx(combined.variance)
        assert part_a.max == combined.max

    def test_merge_into_empty(self):
        empty = LatencyStat("empty")
        other = LatencyStat("other")
        other.record(5.0)
        empty.merge(other)
        assert empty.count == 1
        assert empty.mean == 5.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=200))
    def test_mean_matches_reference(self, samples):
        stat = LatencyStat("prop")
        for sample in samples:
            stat.record(sample)
        assert stat.mean == pytest.approx(sum(samples) / len(samples),
                                          rel=1e-9, abs=1e-6)
        assert stat.min == min(samples)
        assert stat.max == max(samples)


class TestHistogram:
    def test_bucketing(self):
        histogram = Histogram("h", [10, 100, 1000])
        for sample in [5, 50, 500, 5000]:
            histogram.record(sample)
        assert histogram.counts == [1, 1, 1, 1]

    def test_fraction_at_or_below(self):
        histogram = Histogram("h", [10, 100])
        for sample in [1, 2, 3, 50, 500]:
            histogram.record(sample)
        assert histogram.fraction_at_or_below(10) == pytest.approx(0.6)
        assert histogram.fraction_at_or_below(100) == pytest.approx(0.8)

    def test_as_dict_labels(self):
        histogram = Histogram("h", [10])
        histogram.record(5)
        histogram.record(100)
        assert histogram.as_dict() == {"<=10": 1, "overflow": 1}

    def test_requires_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", [])


class TestStatRegistry:
    def test_counter_is_memoised(self):
        registry = StatRegistry(prefix="ssd")
        registry.counter("reads").add(3)
        registry.counter("reads").add(2)
        assert registry.counter("reads").value == 5

    def test_snapshot_includes_prefix(self):
        registry = StatRegistry(prefix="dev")
        registry.counter("ops").add(1)
        registry.latency("lat").record(10.0)
        snapshot = registry.snapshot()
        assert snapshot["dev.ops"] == 1
        assert snapshot["dev.lat.mean_ns"] == 10.0

    def test_reset_clears_everything(self):
        registry = StatRegistry()
        registry.counter("ops").add(1)
        registry.latency("lat").record(5.0)
        registry.reset()
        assert registry.counter("ops").value == 0
        assert registry.latency("lat").count == 0


class TestMerge:
    """Parallel-run merges: workers' registries fold into one aggregate."""

    def test_counter_merge_adds(self):
        left, right = Counter("x"), Counter("x")
        left.add(3)
        right.add(4.5)
        left.merge(right)
        assert left.value == 7.5

    def test_histogram_merge_adds_bucketwise(self):
        left = Histogram("h", [10.0, 100.0])
        right = Histogram("h", [10.0, 100.0])
        for sample in (5.0, 50.0):
            left.record(sample)
        for sample in (50.0, 500.0):
            right.record(sample)
        left.merge(right)
        assert left.total_samples == 4
        assert left.as_dict() == {"<=10": 1, "<=100": 2, "overflow": 1}

    def test_histogram_merge_rejects_bound_mismatch(self):
        left = Histogram("h", [10.0])
        right = Histogram("h", [20.0])
        with pytest.raises(ValueError):
            left.merge(right)

    def test_registry_merge_folds_all_kinds(self):
        left, right = StatRegistry(), StatRegistry()
        left.counter("ops").add(1)
        right.counter("ops").add(2)
        right.counter("only_right").add(7)
        left.latency("lat").record(10.0)
        right.latency("lat").record(30.0)
        right.histogram("sizes", [64.0]).record(32.0)
        left.merge(right)
        assert left.counter("ops").value == 3
        assert left.counter("only_right").value == 7
        assert left.latency("lat").count == 2
        assert left.latency("lat").mean == 20.0
        assert left.histogram("sizes", [64.0]).total_samples == 1

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1),
           st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1))
    def test_registry_latency_merge_matches_single_stream(self, first,
                                                          second):
        split_left, split_right = StatRegistry(), StatRegistry()
        combined = StatRegistry()
        for sample in first:
            split_left.latency("lat").record(sample)
            combined.latency("lat").record(sample)
        for sample in second:
            split_right.latency("lat").record(sample)
            combined.latency("lat").record(sample)
        split_left.merge(split_right)
        merged = split_left.latency("lat")
        reference = combined.latency("lat")
        assert merged.count == reference.count
        assert merged.min == reference.min
        assert merged.max == reference.max
        assert math.isclose(merged.total, reference.total,
                            rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(merged.mean, reference.mean,
                            rel_tol=1e-9, abs_tol=1e-6)
