"""Discrete-event engine: clock monotonicity, ordering, cancellation."""

import pytest

from repro.sim.engine import EventQueue, SimClock, Simulator


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(100.0)
        assert clock.now == 100.0

    def test_cannot_move_backwards(self):
        clock = SimClock(50.0)
        with pytest.raises(ValueError):
            clock.advance_to(10.0)

    def test_advance_by(self):
        clock = SimClock(10.0)
        assert clock.advance_by(5.0) == 15.0

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance_by(-1.0)

    def test_reset(self):
        clock = SimClock(99.0)
        clock.reset()
        assert clock.now == 0.0


class TestEventQueue:
    def test_pop_returns_earliest(self):
        queue = EventQueue()
        queue.push(20.0, lambda: None, "late")
        queue.push(10.0, lambda: None, "early")
        event = queue.pop()
        assert event is not None and event.name == "early"

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None, "first")
        queue.push(5.0, lambda: None, "second")
        assert queue.pop().name == "first"
        assert queue.pop().name == "second"

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, "cancelled")
        queue.push(2.0, lambda: None, "kept")
        event.cancel()
        assert queue.pop().name == "kept"

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(7.0, lambda: None)
        assert queue.peek_time() == 7.0

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None


class TestSimulator:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule_at(30.0, lambda: order.append("c"))
        simulator.schedule_at(10.0, lambda: order.append("a"))
        simulator.schedule_at(20.0, lambda: order.append("b"))
        simulator.run()
        assert order == ["a", "b", "c"]
        assert simulator.now == 30.0

    def test_schedule_after_uses_relative_delay(self):
        simulator = Simulator()
        simulator.clock.advance_to(100.0)
        times = []
        simulator.schedule_after(5.0, lambda: times.append(simulator.now))
        simulator.run()
        assert times == [105.0]

    def test_cannot_schedule_in_past(self):
        simulator = Simulator()
        simulator.clock.advance_to(10.0)
        with pytest.raises(ValueError):
            simulator.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_run_until_stops_before_later_events(self):
        simulator = Simulator()
        fired = []
        simulator.schedule_at(10.0, lambda: fired.append(10))
        simulator.schedule_at(100.0, lambda: fired.append(100))
        simulator.run(until_ns=50.0)
        assert fired == [10]
        assert simulator.now == 50.0

    def test_max_events_limit(self):
        simulator = Simulator()
        for offset in range(5):
            simulator.schedule_at(float(offset), lambda: None)
        simulator.run(max_events=3)
        assert simulator.events_processed == 3

    def test_events_can_schedule_more_events(self):
        simulator = Simulator()
        log = []

        def first():
            log.append("first")
            simulator.schedule_after(5.0, lambda: log.append("chained"))

        simulator.schedule_at(1.0, first)
        simulator.run()
        assert log == ["first", "chained"]
        assert simulator.now == 6.0

    def test_reset(self):
        simulator = Simulator()
        simulator.schedule_at(5.0, lambda: None)
        simulator.run()
        simulator.reset()
        assert simulator.now == 0.0
        assert simulator.events_processed == 0
        assert len(simulator.queue) == 0

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False
