"""Batched flash submission API: ``submit_batch`` and the batch-of-one shim.

The contract under test is the one :meth:`repro.flash.ssd.SSD.submit_batch`
docstring states: a batch is bit-identical to submitting each request
through the scalar entry point in order.  Since :meth:`SSD.submit` is
itself the batch-of-one wrapper, the parity tests here compare two fresh
devices — one fed scalar calls, one fed whole vectors — and require every
completion time, per-request counter and device statistic to match exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import FlashGeometry, PCIeConfig, SSDConfig
from repro.flash import IOBatchResult, IORequest, IORequestBatch, SSD
from repro.interconnect import PCIeLink
from repro.units import KB, MB, us


def small_ssd(buffer_enabled: bool = True) -> SSD:
    geometry = FlashGeometry(channels=4, packages_per_channel=1,
                             dies_per_package=2, planes_per_die=1,
                             blocks_per_plane=32, pages_per_block=32)
    config = SSDConfig(name="ull-flash", geometry=geometry,
                       dram_buffer_bytes=MB(1),
                       dram_buffer_enabled=buffer_enabled)
    return SSD(config)


def scalar_replay(ssd: SSD, batch: IORequestBatch) -> list:
    """Feed *batch* through the scalar entry point, one request at a time."""
    return [ssd.submit(batch.request(j)) for j in range(len(batch))]


def assert_batch_matches_scalar(batch_result: IOBatchResult,
                                scalar_results: list) -> None:
    assert len(batch_result) == len(scalar_results)
    for j, scalar in enumerate(scalar_results):
        assert batch_result.start_ns[j] == scalar.start_ns
        assert batch_result.finish_ns[j] == scalar.finish_ns
        assert batch_result.latency_ns[j] == scalar.latency_ns
        assert batch_result.buffer_hits[j] == scalar.buffer_hits
        assert batch_result.buffer_misses[j] == scalar.buffer_misses
        assert batch_result.flash_reads[j] == scalar.flash_reads
        assert batch_result.flash_programs[j] == scalar.flash_programs
        assert batch_result.gc_pages_moved[j] == scalar.gc_pages_moved


class TestBatchConstruction:
    def test_columns_accept_numpy_arrays(self):
        batch = IORequestBatch(
            is_write=np.array([False, True]),
            byte_offset=np.array([0, KB(4)], dtype=np.int64),
            size_bytes=np.array([KB(4), KB(4)], dtype=np.int64),
            submit_ns=np.array([0.0, 100.0]))
        assert len(batch) == 2
        assert batch.byte_offset == [0, KB(4)]

    def test_scalar_columns_broadcast(self):
        batch = IORequestBatch(is_write=False, byte_offset=[0, KB(4), KB(8)],
                               size_bytes=KB(4), submit_ns=0.0)
        assert batch.size_bytes == [KB(4)] * 3
        assert batch.is_write == [False] * 3

    def test_open_loop_requires_submit_clock(self):
        with pytest.raises(ValueError):
            IORequestBatch(is_write=False, byte_offset=[0], size_bytes=[KB(4)])

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            IORequestBatch(is_write=False, byte_offset=[-1],
                           size_bytes=[KB(4)], submit_ns=[0.0])

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            IORequestBatch(is_write=False, byte_offset=[0], size_bytes=[0],
                           submit_ns=[0.0])

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            IORequestBatch(is_write=[False], byte_offset=[0, KB(4)],
                           size_bytes=[KB(4)], submit_ns=[0.0])

    def test_request_view_round_trips(self):
        batch = IORequestBatch(is_write=[True], byte_offset=[KB(8)],
                               size_bytes=[KB(4)], submit_ns=[50.0],
                               fua=[True])
        request = batch.request(0)
        assert request == IORequest(is_write=True, byte_offset=KB(8),
                                    size_bytes=KB(4), submit_ns=50.0, fua=True)

    def test_of_request_is_a_batch_of_one(self):
        request = IORequest(is_write=False, byte_offset=0, size_bytes=KB(4),
                            submit_ns=10.0)
        batch = IORequestBatch.of_request(request)
        assert len(batch) == 1
        assert batch.request(0) == request

    def test_chained_batch_has_no_submit_column(self):
        batch = IORequestBatch(is_write=False, byte_offset=[0, KB(4)],
                               size_bytes=KB(4), chained=True, start_ns=5.0)
        assert batch.submit_ns is None
        with pytest.raises(ValueError):
            batch.request(0)


class TestScalarShimParity:
    """``SSD.submit`` (batch-of-one) vs a direct multi-request batch."""

    def test_read_sequence_matches(self):
        scalar_ssd = small_ssd()
        batched_ssd = small_ssd()
        for ssd in (scalar_ssd, batched_ssd):
            ssd.precondition(0, 64)
        offsets = [KB(4) * (j % 8) for j in range(32)]
        batch = IORequestBatch(is_write=False, byte_offset=offsets,
                               size_bytes=KB(4),
                               submit_ns=[j * 500.0 for j in range(32)])
        scalar_results = scalar_replay(scalar_ssd, batch)
        batch_result = batched_ssd.submit_batch(batch)
        assert_batch_matches_scalar(batch_result, scalar_results)
        assert batched_ssd.statistics() == scalar_ssd.statistics()

    def test_mixed_read_write_fua_matches(self):
        scalar_ssd = small_ssd()
        batched_ssd = small_ssd()
        for ssd in (scalar_ssd, batched_ssd):
            ssd.precondition(0, 32)
        count = 48
        batch = IORequestBatch(
            is_write=[j % 3 == 0 for j in range(count)],
            byte_offset=[KB(4) * (j % 16) for j in range(count)],
            size_bytes=[KB(4) if j % 5 else KB(16) for j in range(count)],
            submit_ns=[j * 200.0 for j in range(count)],
            fua=[j % 7 == 0 for j in range(count)])
        scalar_results = scalar_replay(scalar_ssd, batch)
        batch_result = batched_ssd.submit_batch(batch)
        assert_batch_matches_scalar(batch_result, scalar_results)
        assert batched_ssd.statistics() == scalar_ssd.statistics()

    def test_queue_pressure_matches(self):
        # Back-to-back submissions at one clock exercise the bounded
        # outstanding-queue admission path.
        scalar_ssd = small_ssd(buffer_enabled=False)
        batched_ssd = small_ssd(buffer_enabled=False)
        for ssd in (scalar_ssd, batched_ssd):
            ssd.precondition(0, 64)
        batch = IORequestBatch(is_write=False,
                               byte_offset=[KB(4) * j for j in range(40)],
                               size_bytes=KB(4), submit_ns=0.0)
        scalar_results = scalar_replay(scalar_ssd, batch)
        batch_result = batched_ssd.submit_batch(batch)
        assert_batch_matches_scalar(batch_result, scalar_results)

    def test_record_details_false_drops_counter_columns(self):
        ssd = small_ssd()
        ssd.precondition(0, 16)
        batch = IORequestBatch(is_write=False,
                               byte_offset=[0, KB(4)], size_bytes=KB(4),
                               submit_ns=[0.0, 100.0], record_details=False)
        result = ssd.submit_batch(batch)
        assert result.buffer_hits is None
        assert result.flash_reads is None
        assert len(result.latency_ns) == 2

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=63),
                              st.sampled_from([KB(1), KB(4), KB(16)]),
                              st.booleans()),
                    min_size=1, max_size=24),
           st.booleans())
    def test_property_batch_equals_scalar(self, rows, buffered):
        scalar_ssd = small_ssd(buffer_enabled=buffered)
        batched_ssd = small_ssd(buffer_enabled=buffered)
        for ssd in (scalar_ssd, batched_ssd):
            ssd.precondition(0, 64)
        batch = IORequestBatch(
            is_write=[row[0] for row in rows],
            byte_offset=[KB(4) * row[1] for row in rows],
            size_bytes=[row[2] for row in rows],
            submit_ns=[j * 150.0 for j in range(len(rows))],
            fua=[row[3] for row in rows])
        scalar_results = scalar_replay(scalar_ssd, batch)
        batch_result = batched_ssd.submit_batch(batch)
        assert_batch_matches_scalar(batch_result, scalar_results)
        assert batched_ssd.statistics() == scalar_ssd.statistics()


class TestChainedParity:
    """Chained batches vs the equivalent scalar closed loop."""

    def chained_scalar_replay(self, ssd, offsets, writes, pre, post,
                              link=None, link_bytes=0):
        now = 0.0
        latencies = []
        services = []
        for j, offset in enumerate(offsets):
            now += pre[j]
            result = ssd.submit(IORequest(is_write=writes[j],
                                          byte_offset=offset,
                                          size_bytes=KB(4), submit_ns=now))
            service = result.latency_ns
            if link is not None:
                record = link.transfer(link_bytes, result.finish_ns)
                service = result.latency_ns + record.latency_ns
            latencies.append(result.latency_ns)
            services.append(service)
            now += post[j] + service
        return now, latencies, services

    def test_chained_without_link_matches_scalar_loop(self):
        scalar_ssd = small_ssd()
        batched_ssd = small_ssd()
        for ssd in (scalar_ssd, batched_ssd):
            ssd.precondition(0, 64)
        count = 24
        offsets = [KB(4) * (j % 12) for j in range(count)]
        writes = [j % 4 == 0 for j in range(count)]
        pre = [float(50 + 13 * j) for j in range(count)]
        post = [float(20 + 7 * j) for j in range(count)]
        end, latencies, services = self.chained_scalar_replay(
            scalar_ssd, offsets, writes, pre, post)
        batch = IORequestBatch(is_write=writes, byte_offset=offsets,
                               size_bytes=KB(4), chained=True, start_ns=0.0,
                               pre_gap_ns=pre, post_gap_ns=post)
        result = batched_ssd.submit_batch(batch)
        assert result.latency_ns == latencies
        assert result.service_latency_ns == services
        assert result.end_ns == end
        assert batched_ssd.statistics() == scalar_ssd.statistics()

    def test_chained_with_link_matches_scalar_loop(self):
        scalar_ssd = small_ssd()
        batched_ssd = small_ssd()
        for ssd in (scalar_ssd, batched_ssd):
            ssd.precondition(0, 64)
        scalar_link = PCIeLink(PCIeConfig())
        batched_link = PCIeLink(PCIeConfig())
        count = 16
        offsets = [KB(4) * (j % 6) for j in range(count)]
        writes = [j % 5 == 0 for j in range(count)]
        pre = [float(30 * (j % 3)) for j in range(count)]
        post = [float(11 * (j % 4)) for j in range(count)]
        end, latencies, services = self.chained_scalar_replay(
            scalar_ssd, offsets, writes, pre, post,
            link=scalar_link, link_bytes=KB(4))
        batch = IORequestBatch(is_write=writes, byte_offset=offsets,
                               size_bytes=KB(4), chained=True, start_ns=0.0,
                               pre_gap_ns=pre, post_gap_ns=post,
                               link=batched_link, link_bytes=KB(4))
        result = batched_ssd.submit_batch(batch)
        assert result.latency_ns == latencies
        assert result.service_latency_ns == services
        assert result.end_ns == end
        assert batched_link.statistics() == scalar_link.statistics()
        assert batched_ssd.statistics() == scalar_ssd.statistics()


class TestEmptyAndEdgeBatches:
    def test_empty_batch(self):
        ssd = small_ssd()
        batch = IORequestBatch(is_write=[], byte_offset=[], size_bytes=[],
                               submit_ns=[])
        result = ssd.submit_batch(batch)
        assert len(result) == 0
        assert ssd.requests_served == 0

    def test_statistics_use_flash_namespace(self):
        ssd = small_ssd()
        ssd.precondition(0, 8)
        ssd.read(0, KB(4), at_ns=0.0)
        stats = ssd.statistics()
        assert all(key.startswith("flash_") for key in stats)
        assert stats["flash_requests_served"] == 1.0
